//! The event-heap message fabric.
//!
//! [`EventFabric`] implements the shared engine's
//! [`Fabric`] contract over a discrete-event
//! core: every accepted send becomes an *arrival event* on the
//! [`EventQueue`], stamped with the exact delivery time the
//! [`WireState`] cost model charged (sender CPU, NIC/medium occupancy,
//! topology-aware latency, injected perturbation). Receives pump the heap —
//! draining arrivals in global `(time, seq)` order into sparse per-link
//! inboxes — and then consume the link's FIFO head.
//!
//! ## Parity with the queue-stepped fabric
//!
//! `VirtualSim` runs the same engine over `FaultyVirtualNet`, which pushes
//! each message straight into a per-link `VecDeque`. Both fabrics call the
//! *same* `WireState::charge_send` / `observe_delivery` arithmetic in the
//! *same* order (the engine's interleaving is fabric-independent), and the
//! per-link FIFO here is keyed by send sequence — not delivery stamp — so
//! jittered messages cannot reorder within a link, exactly like the
//! `VecDeque`. Clocks, traffic counters, and therefore run fingerprints are
//! bit-identical by construction; the parity suite in `tests/` holds this
//! across the full scenario matrix.
//!
//! ## Why it scales
//!
//! The queue-stepped fabric allocates `ranks²` queues up front — fine at
//! the paper's 8 calculators, ~34 MB of empty `VecDeque` headers at 1,024.
//! Here the inbox map holds only links that have ever carried traffic, and
//! with the engine's sparse exchange mode the active-link set stays
//! proportional to actual migration, not to `ranks²`.

use std::collections::BTreeMap;

use cluster_sim::NetworkModel;
use netsim::{
    FailedSend, FaultInjector, FaultPlan, PlanInjector, SendFate, TrafficStats, TransportError,
    WireSize, WireState,
};
use psa_runtime::checkpoint::FabricCheckpoint;
use psa_runtime::msg::Msg;
use psa_runtime::protocol::Fabric;

use crate::proc::{ProcState, ProcTable, SimStats};
use crate::queue::EventQueue;

/// An in-flight message: scheduled on the heap at its delivery stamp.
struct Arrival {
    from: usize,
    to: usize,
    msg: Msg,
}

/// Discrete-event message fabric for the shared protocol engine.
pub struct EventFabric {
    wire: WireState,
    queue: EventQueue<Arrival>,
    /// Delivered-but-unconsumed messages per directed link, FIFO by send
    /// sequence: `inboxes[(to, from)][seq] = (deliver_at, msg)`. Sparse on
    /// purpose — only links that carried traffic exist.
    inboxes: BTreeMap<(usize, usize), BTreeMap<u64, (f64, Msg)>>,
    procs: ProcTable,
    inj: PlanInjector,
    stats: SimStats,
}

impl EventFabric {
    /// Build the fabric for ranks living on the given nodes, executing the
    /// given fault plan (pass `FaultPlan::none(..)` for a healthy cluster).
    pub fn new(net: NetworkModel, node_of: Vec<usize>, node_count: usize, plan: FaultPlan) -> Self {
        let ranks = node_of.len();
        EventFabric {
            wire: WireState::new(net, node_of, node_count),
            queue: EventQueue::new(),
            inboxes: BTreeMap::new(),
            procs: ProcTable::new(ranks),
            inj: PlanInjector::new(plan),
            stats: SimStats::default(),
        }
    }

    /// Snapshot of the event-loop counters (heap depth is folded in).
    pub fn sim_stats(&self) -> SimStats {
        SimStats { max_heap_depth: self.queue.max_depth(), ..self.stats }
    }

    /// Current scheduling state of one virtual rank.
    pub fn proc_state(&self, rank: usize) -> Option<ProcState> {
        self.procs.get(rank)
    }

    /// Drain every pending arrival into its link inbox, in global
    /// `(time, seq)` order. A blocked receiver whose awaited link just got
    /// traffic becomes runnable again.
    fn pump(&mut self) {
        while let Some((time, seq, a)) = self.queue.pop() {
            self.stats.events += 1;
            if let Some(ProcState::BlockedRecv { from }) = self.procs.get(a.to) {
                if from == a.from {
                    self.procs.set_ready(a.to);
                }
            }
            self.inboxes.entry((a.to, a.from)).or_default().insert(seq, (time, a.msg));
        }
    }

    fn send(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), FailedSend<Msg>> {
        let payload = msg.wire_bytes();
        match self.inj.on_send(from, to, payload) {
            SendFate::Deliver { extra_delay } => {
                // Identical arithmetic, identical order to the queue-stepped
                // fabric: counters + sender clock + occupancy, then the
                // delivery stamp schedules the arrival event.
                let deliver_at = self.wire.charge_send(from, to, payload, extra_delay);
                self.stats.sends += 1;
                self.queue.push(deliver_at, Arrival { from, to, msg });
                Ok(())
            }
            SendFate::FailTransient => {
                // The failure models a NIC/queue rejection before occupancy:
                // nothing is charged, the message comes back for retry.
                Err(FailedSend { msg, error: TransportError::SendFailed { rank: from, peer: to } })
            }
        }
    }

    fn recv(&mut self, to: usize, from: usize) -> Result<Msg, TransportError> {
        self.pump();
        let head = self.inboxes.get_mut(&(to, from)).and_then(BTreeMap::pop_first);
        match head {
            Some((_seq, (deliver_at, msg))) => {
                if self.wire.observe_delivery(to, deliver_at) {
                    self.stats.fast_forwards += 1;
                }
                self.procs.set_ready(to);
                Ok(msg)
            }
            None => Err(TransportError::NoMessage { rank: to, peer: from }),
        }
    }

    fn recv_deadline(&mut self, to: usize, from: usize, wait: f64) -> Result<Msg, TransportError> {
        self.pump();
        if self.inboxes.get(&(to, from)).is_none_or(BTreeMap::is_empty) {
            // Nothing in flight can ever satisfy this receive (the heap is
            // drained): charge the bounded wait and surface the timeout,
            // recording the park/unpark for the stats.
            self.procs.block_recv(to, from);
            self.stats.blocked_recvs += 1;
            self.wire.advance(to, wait);
            self.procs.set_ready(to);
            return Err(TransportError::Timeout { rank: to, peer: from });
        }
        self.recv(to, from)
    }

    fn take_queued(&mut self, to: usize, from: usize) -> Vec<Msg> {
        self.pump();
        self.inboxes
            .remove(&(to, from))
            .map(|q| q.into_values().map(|(_, msg)| msg).collect())
            .unwrap_or_default()
    }

    fn queued_senders(&mut self, to: usize) -> Vec<usize> {
        self.pump();
        self.inboxes
            .range((to, 0)..=(to, usize::MAX))
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(_, from), _)| from)
            .collect()
    }
}

impl Fabric for EventFabric {
    fn send(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), FailedSend<Msg>> {
        EventFabric::send(self, from, to, msg)
    }

    fn recv(&mut self, to: usize, from: usize) -> Result<Msg, TransportError> {
        EventFabric::recv(self, to, from)
    }

    fn recv_deadline(&mut self, to: usize, from: usize, wait: f64) -> Result<Msg, TransportError> {
        EventFabric::recv_deadline(self, to, from, wait)
    }

    fn take_queued(&mut self, to: usize, from: usize) -> Vec<Msg> {
        EventFabric::take_queued(self, to, from)
    }

    fn queued_senders(&mut self, to: usize) -> Vec<usize> {
        EventFabric::queued_senders(self, to)
    }

    fn now(&self, rank: usize) -> f64 {
        self.wire.now(rank)
    }

    fn advance(&mut self, rank: usize, seconds: f64) {
        self.wire.advance(rank, seconds);
    }

    fn barrier(&mut self, ranks: &[usize]) {
        self.wire.barrier(ranks);
    }

    fn makespan(&self) -> f64 {
        self.wire.makespan()
    }

    fn ranks(&self) -> usize {
        self.wire.ranks()
    }

    fn stats(&self) -> TrafficStats {
        self.wire.stats()
    }

    fn compute_factor(&self, rank: usize) -> f64 {
        self.inj.compute_factor(rank)
    }

    fn stall_seconds(&self, rank: usize, frame: u64) -> f64 {
        self.inj.stall_seconds(rank, frame)
    }

    fn crash_frame(&self, rank: usize) -> Option<u64> {
        self.inj.crash_frame(rank)
    }

    fn save_fabric(&self) -> FabricCheckpoint {
        FabricCheckpoint {
            wire: self.wire.checkpoint(),
            injector_streams: self.inj.stream_states(),
            // Event-loop counters ride in the opaque extras so a restored
            // fabric keeps honest cumulative stats. The heap's max depth
            // cannot be restored into a fresh EventQueue and is accepted as
            // an observability loss (sim stats are never fingerprinted).
            extra: vec![
                self.stats.events,
                self.stats.sends,
                self.stats.fast_forwards,
                self.stats.blocked_recvs,
            ],
        }
    }

    fn load_fabric(&mut self, ck: &FabricCheckpoint) {
        self.wire.restore_checkpoint(&ck.wire);
        self.inj.restore_stream_states(&ck.injector_streams);
        // Frame-boundary checkpoints never capture in-flight traffic:
        // drop the heap, the inboxes, and any parked proc state.
        self.queue = EventQueue::new();
        self.inboxes.clear();
        self.procs = ProcTable::new(self.wire.ranks());
        let mut extra = ck.extra.iter().copied();
        self.stats.events = extra.next().unwrap_or(0);
        self.stats.sends = extra.next().unwrap_or(0);
        self.stats.fast_forwards = extra.next().unwrap_or(0);
        self.stats.blocked_recvs = extra.next().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NetworkModel;
    use netsim::{FaultyVirtualNet, VirtualNet};

    fn model() -> NetworkModel {
        NetworkModel::myrinet()
    }

    fn fabric(ranks: usize) -> EventFabric {
        let node_of: Vec<usize> = (0..ranks).collect();
        EventFabric::new(model(), node_of, ranks, FaultPlan::none(1, ranks))
    }

    /// Reference fabric with identical placement for lock-step comparison.
    fn reference(ranks: usize) -> FaultyVirtualNet<Msg, PlanInjector> {
        let node_of: Vec<usize> = (0..ranks).collect();
        FaultyVirtualNet::new(
            VirtualNet::new(model(), node_of, ranks),
            PlanInjector::new(FaultPlan::none(1, ranks)),
        )
    }

    #[test]
    fn send_recv_round_trip_matches_reference_clocks() {
        let mut ev = fabric(3);
        let mut rf = reference(3);
        for (from, to) in [(0, 1), (1, 2), (2, 0), (0, 1)] {
            let m = Msg::FrameDone { frame: 0 };
            assert!(EventFabric::send(&mut ev, from, to, m.clone()).is_ok());
            assert!(rf.send(from, to, m).is_ok());
        }
        for (to, from) in [(1, 0), (2, 1), (0, 2), (1, 0)] {
            let a = EventFabric::recv(&mut ev, to, from).expect("queued");
            let b = rf.recv(to, from).expect("queued");
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        for r in 0..3 {
            assert_eq!(Fabric::now(&ev, r), rf.now(r), "clock {r} diverged");
        }
        assert_eq!(ev.makespan(), rf.makespan());
        assert_eq!(Fabric::stats(&ev).messages, rf.stats().messages);
    }

    #[test]
    fn per_link_fifo_survives_cross_link_interleaving() {
        let mut ev = fabric(4);
        // 0→3 and 1→3 interleaved; each link must drain in its own order.
        for i in 0..3u64 {
            EventFabric::send(&mut ev, 0, 3, Msg::FrameDone { frame: i }).expect("send");
            EventFabric::send(&mut ev, 1, 3, Msg::FrameDone { frame: 10 + i }).expect("send");
        }
        for i in 0..3u64 {
            match EventFabric::recv(&mut ev, 3, 0) {
                Ok(Msg::FrameDone { frame }) => assert_eq!(frame, i),
                other => panic!("link (3,0) out of order: {other:?}"),
            }
        }
        for i in 0..3u64 {
            match EventFabric::recv(&mut ev, 3, 1) {
                Ok(Msg::FrameDone { frame }) => assert_eq!(frame, 10 + i),
                other => panic!("link (3,1) out of order: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_links_error_and_deadline_charges_wait() {
        let mut ev = fabric(2);
        assert!(matches!(
            EventFabric::recv(&mut ev, 0, 1),
            Err(TransportError::NoMessage { rank: 0, peer: 1 })
        ));
        let t0 = Fabric::now(&ev, 0);
        assert!(matches!(
            EventFabric::recv_deadline(&mut ev, 0, 1, 0.25),
            Err(TransportError::Timeout { rank: 0, peer: 1 })
        ));
        assert_eq!(Fabric::now(&ev, 0), t0 + 0.25);
        assert_eq!(ev.sim_stats().blocked_recvs, 1);
    }

    #[test]
    fn queued_senders_are_sparse_and_ascending() {
        let mut ev = fabric(8);
        for from in [5, 2, 7] {
            EventFabric::send(&mut ev, from, 3, Msg::FrameDone { frame: 0 }).expect("send");
        }
        assert_eq!(EventFabric::queued_senders(&mut ev, 3), vec![2, 5, 7]);
        assert_eq!(EventFabric::queued_senders(&mut ev, 0), Vec::<usize>::new());
        // Only touched links occupy inbox memory.
        assert!(ev.inboxes.len() <= 3);
    }

    #[test]
    fn take_queued_drains_without_touching_clocks() {
        let mut ev = fabric(2);
        EventFabric::send(&mut ev, 1, 0, Msg::FrameDone { frame: 1 }).expect("send");
        EventFabric::send(&mut ev, 1, 0, Msg::FrameDone { frame: 2 }).expect("send");
        let t0 = Fabric::now(&ev, 0);
        let drained = EventFabric::take_queued(&mut ev, 0, 1);
        assert_eq!(drained.len(), 2);
        assert!(matches!(drained.first(), Some(Msg::FrameDone { frame: 1 })));
        assert_eq!(Fabric::now(&ev, 0), t0);
    }

    #[test]
    fn fast_forward_counts_idle_receivers_only() {
        let mut ev = fabric(2);
        EventFabric::send(&mut ev, 0, 1, Msg::FrameDone { frame: 0 }).expect("send");
        // Receiver clock is behind the delivery stamp: fast-forward.
        EventFabric::recv(&mut ev, 1, 0).expect("queued");
        assert_eq!(ev.sim_stats().fast_forwards, 1);
        // Receiver far ahead: no fast-forward on the next delivery.
        Fabric::advance(&mut ev, 1, 1000.0);
        EventFabric::send(&mut ev, 0, 1, Msg::FrameDone { frame: 1 }).expect("send");
        EventFabric::recv(&mut ev, 1, 0).expect("queued");
        assert_eq!(ev.sim_stats().fast_forwards, 1);
    }

    #[test]
    fn transient_failure_returns_message_uncharged() {
        use netsim::LinkFault;
        let mut plan = FaultPlan::none(7, 2);
        *plan.link_mut(0, 1) = LinkFault::lossy(0.999_999);
        let node_of = vec![0, 1];
        let mut ev = EventFabric::new(model(), node_of, 2, plan);
        let t0 = Fabric::now(&ev, 0);
        match EventFabric::send(&mut ev, 0, 1, Msg::FrameDone { frame: 0 }) {
            Err(FailedSend { msg: Msg::FrameDone { .. }, error }) => {
                assert_eq!(error, TransportError::SendFailed { rank: 0, peer: 1 });
            }
            other => panic!("lossy link should reject: {other:?}"),
        }
        assert_eq!(Fabric::now(&ev, 0), t0, "failed send must not charge wire time");
        assert_eq!(ev.sim_stats().sends, 0);
    }
}
