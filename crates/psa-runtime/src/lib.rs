//! The IPDPS'05 animation model: processes, frame protocol, load balancing.
//!
//! This crate turns the sequential building blocks of `psa-core` into the
//! paper's distributed model:
//!
//! * [`msg`] — the message vocabulary of the frame protocol (Figure 2);
//! * [`balance`] — the load-balancing decision kernel (§3.2.5 rules,
//!   adaptive minimum transfer, the [`balance::Balancer`] trait) as pure,
//!   heavily-tested functions;
//! * [`balancers`] — the pluggable strategies behind the trait: the
//!   paper's centralized neighbor-pair walk, decentralized half-excess,
//!   damped diffusion, and hierarchical/SFC group balancing;
//! * [`scene`] — a simulation scene: systems, action lists, external
//!   objects;
//! * [`config`] — run configuration (finite/infinite space, SLB/DLB,
//!   bucket counts, frame counts);
//! * [`protocol`] — the single shared implementation of the Figure-2 frame
//!   protocol: the [`protocol::Engine`] every interleaved executor drives
//!   (over any [`protocol::Fabric`]) plus the per-role SPMD bodies the
//!   threaded executor spawns;
//! * [`virtual_exec`] — the deterministic virtual-time executor that
//!   reproduces the paper's cluster timing via `cluster-sim` + `netsim`;
//! * [`sequential`] — the sequential baseline the paper computes speed-ups
//!   against;
//! * [`threaded`] — an SPMD executor over real host threads (wall-clock
//!   demonstration that the protocol actually parallelizes);
//! * [`report`] — run reports: per-frame stats, migration volumes, traffic,
//!   and the virtual makespan the tables are computed from;
//! * [`trace`] — protocol event traces used to assert the Figure-2
//!   ordering in tests.

pub mod balance;
pub mod balancers;
pub mod checkpoint;
pub mod config;
pub mod msg;
pub mod protocol;
pub mod report;
pub mod scene;
pub mod sequential;
pub mod threaded;
pub mod trace;
pub mod virtual_exec;

pub use balance::{Balancer, BalancerConfig, LoadInfo, Order, Transfer};
pub use balancers::strategy_for;
pub use checkpoint::{CheckpointConfig, EngineSnapshot, FabricCheckpoint, RecoveryEvent};
pub use config::{
    BalanceMode, ExchangeMode, LoadMetric, ParallelConfig, RunConfig, SpaceMode, SystemSchedule,
};
pub use msg::ProtocolError;
pub use protocol::{donation_cut, node_layout, Engine, Fabric};
pub use report::RunReport;
pub use scene::{CollisionSpec, Scene, SystemSetup};
pub use sequential::run_sequential;
pub use threaded::{run_threaded, run_threaded_traced};
pub use virtual_exec::VirtualSim;
