//! The frame-protocol message vocabulary (paper Figure 2).
//!
//! One enum covers every arrow in the paper's sequence diagram: particle
//! batches (creation, exchange, balancing donations, shipping to the image
//! generator), end-of-transmission notifications, load information, balance
//! orders, new dimensions, and the domain broadcast.

use netsim::{TransportError, WireSize};
use psa_core::{InvariantViolation, Particle, SystemId, WIRE_BYTES};
use psa_math::Scalar;

use crate::balance::{LoadInfo, Order};

/// Render payload bytes per particle shipped to the image generator.
///
/// Calculators quantize to screen-space (two 16-bit coordinates; color and
/// intensity are implied by the system and age bucket) rather than shipping
/// the full 70-byte particle — the paper's Fast-Ethernet results are only
/// achievable if frame shipping is far lighter than migration traffic.
pub const RENDER_WIRE_BYTES: usize = 4;

/// A message of the frame protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A batch of particles changing owner: creation (manager→calculator),
    /// exchange (calculator→calculator), or balancing donation.
    Particles {
        system: SystemId,
        batch: Vec<Particle>,
        /// Virtual multiplier: each real particle stands for `scale`
        /// particles in the cost model; carried so byte accounting matches.
        scale: f64,
    },
    /// End of a transmission sequence (paper §3.2.1 — receivers must be
    /// told or "they will remain blocked inside the creation action").
    EndOfTransmission { system: SystemId },
    /// A calculator's per-frame load report (paper §3.2.4). `migrated`
    /// piggy-backs the calculator's exchange count for run statistics.
    Load { system: SystemId, info: LoadInfo, migrated: usize },
    /// The manager's balancing orders for one calculator (possibly none).
    /// `round_orders` carries the round's *total* decided-transfer count so
    /// every calculator tracks the zero-order streak (the balance-phase
    /// short-circuit hysteresis) in lock-step with the manager; it rides in
    /// the existing fixed header, so the wire size is unchanged.
    Orders { system: SystemId, orders: Vec<Order>, round_orders: u32 },
    /// A donor's newly computed domain boundary (paper §3.2.5).
    NewCut { system: SystemId, boundary: usize, cut: Scalar },
    /// The manager's broadcast of updated domain boundaries.
    Domains { system: SystemId, cuts: Vec<Scalar> },
    /// Read-only boundary-slab particles shipped to a domain neighbor for
    /// inter-particle collision detection (§3.1.4 / §3.1.5's "particles
    /// exchanged during the computation").
    Ghosts { system: SystemId, batch: Vec<Particle>, scale: f64 },
    /// Quantized render payload for the image generator (count of real
    /// particles; the content travels out-of-band in the virtual executor).
    RenderBatch { system: SystemId, count: usize, scale: f64 },
    /// Full particles for the image generator (threaded executor renders
    /// for real).
    RenderParticles { system: SystemId, batch: Vec<Particle> },
    /// Frame-complete token.
    FrameDone { frame: u64 },
}

impl Msg {
    /// Short message-kind name for protocol diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Particles { .. } => "Particles",
            Msg::EndOfTransmission { .. } => "EndOfTransmission",
            Msg::Load { .. } => "Load",
            Msg::Orders { .. } => "Orders",
            Msg::NewCut { .. } => "NewCut",
            Msg::Domains { .. } => "Domains",
            Msg::Ghosts { .. } => "Ghosts",
            Msg::RenderBatch { .. } => "RenderBatch",
            Msg::RenderParticles { .. } => "RenderParticles",
            Msg::FrameDone { .. } => "FrameDone",
        }
    }
}

/// A frame-protocol failure, carried to the executor instead of panicking a
/// worker thread mid-protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// The transport reported a dead peer.
    Transport(TransportError),
    /// A role received a message kind the Figure-2 schedule forbids at that
    /// point.
    UnexpectedMessage {
        role: &'static str,
        rank: usize,
        frame: u64,
        expected: &'static str,
        got: &'static str,
    },
    /// The manager broadcast (or a donor reported) an invalid domain
    /// configuration.
    Domain { role: &'static str, rank: usize, frame: u64, detail: String },
    /// A `strict-invariants` runtime check failed.
    Invariant(InvariantViolation),
    /// The recorded protocol trace of a frame departed from the Figure-2
    /// order (`strict-invariants` only).
    OrderBroken { role: &'static str, rank: usize, frame: u64, detail: String },
    /// Rasterizer output could not be written.
    Render { frame: u64, detail: String },
    /// A bounded receive gave up on a silent peer, with protocol context a
    /// raw transport error cannot carry.
    Timeout { role: &'static str, rank: usize, frame: u64, peer: usize },
    /// A worker thread panicked (the panic payload is lost to `join`).
    WorkerPanic { role: &'static str },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Transport(e) => write!(f, "transport: {e}"),
            ProtocolError::UnexpectedMessage { role, rank, frame, expected, got } => {
                write!(f, "{role} {rank} frame {frame}: expected {expected}, got {got}")
            }
            ProtocolError::Domain { role, rank, frame, detail } => {
                write!(f, "{role} {rank} frame {frame}: invalid domains: {detail}")
            }
            ProtocolError::Invariant(v) => write!(f, "invariant: {v}"),
            ProtocolError::OrderBroken { role, rank, frame, detail } => {
                write!(f, "{role} {rank} frame {frame}: protocol order broken: {detail}")
            }
            ProtocolError::Render { frame, detail } => {
                write!(f, "image generator frame {frame}: {detail}")
            }
            ProtocolError::Timeout { role, rank, frame, peer } => {
                write!(f, "{role} {rank} frame {frame}: timed out waiting for rank {peer}")
            }
            ProtocolError::WorkerPanic { role } => write!(f, "{role} thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        ProtocolError::Transport(e)
    }
}

impl From<InvariantViolation> for ProtocolError {
    fn from(v: InvariantViolation) -> Self {
        ProtocolError::Invariant(v)
    }
}

impl WireSize for Msg {
    fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Particles { batch, scale, .. } => {
                (batch.len() as f64 * scale * WIRE_BYTES as f64).round() as u64
            }
            Msg::Ghosts { batch, scale, .. } => {
                (batch.len() as f64 * scale * WIRE_BYTES as f64).round() as u64
            }
            Msg::EndOfTransmission { .. } => 4,
            Msg::Load { .. } => 24,
            Msg::Orders { orders, .. } => 8 + 16 * orders.len() as u64,
            Msg::NewCut { .. } => 16,
            Msg::Domains { cuts, .. } => 8 + 4 * cuts.len() as u64,
            Msg::RenderBatch { count, scale, .. } => {
                (*count as f64 * scale * RENDER_WIRE_BYTES as f64).round() as u64
            }
            Msg::RenderParticles { batch, .. } => (batch.len() * WIRE_BYTES) as u64,
            Msg::FrameDone { .. } => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    #[test]
    fn particle_batch_bytes_match_paper_unit() {
        let batch = vec![Particle::at(Vec3::ZERO); 10];
        let m = Msg::Particles { system: SystemId(0), batch, scale: 1.0 };
        assert_eq!(m.wire_bytes(), 700); // 10 × 70 B
    }

    #[test]
    fn scale_multiplies_bytes() {
        let batch = vec![Particle::at(Vec3::ZERO); 10];
        let m = Msg::Particles { system: SystemId(0), batch, scale: 10.0 };
        assert_eq!(m.wire_bytes(), 7000);
    }

    #[test]
    fn render_batch_is_light() {
        let m = Msg::RenderBatch { system: SystemId(0), count: 1000, scale: 1.0 };
        assert_eq!(m.wire_bytes(), 4000);
        let full = Msg::RenderParticles {
            system: SystemId(0),
            batch: vec![Particle::at(Vec3::ZERO); 1000],
        };
        assert!(m.wire_bytes() < full.wire_bytes());
    }

    #[test]
    fn control_messages_are_small() {
        assert!(Msg::EndOfTransmission { system: SystemId(1) }.wire_bytes() < 16);
        assert!(Msg::Domains { system: SystemId(1), cuts: vec![0.0; 9] }.wire_bytes() < 64);
    }

    #[test]
    fn paper_exchange_volume_reproduction() {
        // §5.1: 16 processes × ~560 particles ≈ 613 KB per frame.
        let per_proc = Msg::Particles {
            system: SystemId(0),
            batch: vec![Particle::at(Vec3::ZERO); 560],
            scale: 1.0,
        };
        let total_kb = 16.0 * per_proc.wire_bytes() as f64 / 1024.0;
        assert!((total_kb - 613.0).abs() < 15.0, "got {total_kb} KB");
    }
}
