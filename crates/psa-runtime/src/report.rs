//! Run reports.

use crate::checkpoint::RecoveryEvent;
use netsim::TrafficStats;
use psa_math::stats::Running;
use psa_trace::TraceReport;

/// Scale a particle count by the population scale factor, rounding to the
/// nearest real particle instead of truncating toward zero.
///
/// The engine counts *scaled-down* particles and multiplies back up for
/// reporting; the old truncating cast silently dropped up to one particle
/// per count at fractional scale factors (e.g. `7 × 12.5 = 87.5 → 87`),
/// which made "zero particles lost" gates flaky. Rust's saturating float →
/// int cast clamps any overflow to `u64::MAX` and maps NaN to 0.
pub(crate) fn scale_count(count: u64, scale: f64) -> u64 {
    (count as f64 * scale).round() as u64
}

/// Per-frame aggregate measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FrameReport {
    pub frame: u64,
    /// Alive particles across all systems at frame end.
    pub alive: u64,
    /// Particles that changed calculator this frame (migration).
    pub migrated: u64,
    /// Migration payload bytes this frame.
    pub migration_bytes: u64,
    /// Particles moved by the load balancer this frame.
    pub balanced: u64,
    /// Virtual (or wall) seconds this frame added to the makespan.
    pub frame_time: f64,
    /// Coefficient of imbalance `max/mean − 1` across calculators.
    pub imbalance: f64,
    /// Order-sensitive FNV-1a over every particle state the image generator
    /// received this frame (0 when the executor does not compute it). Two
    /// same-seed runs must agree bit-for-bit — the determinism regression
    /// tests compare these.
    pub checksum: u64,
    /// Deadline-expired receives this frame (fault injection / dead peers).
    pub timeouts: u64,
}

/// The result of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Paper-style config label (`FS-DLB` …).
    pub label: String,
    /// Cluster description (`8*B(16P.)` …) or "sequential".
    pub cluster: String,
    /// Number of calculator processes (1 for sequential).
    pub calculators: usize,
    /// Total makespan in virtual (or wall) seconds.
    pub total_time: f64,
    /// Per-frame measurements, in frame order.
    pub frames: Vec<FrameReport>,
    /// Fabric-level traffic totals.
    pub traffic: TrafficStats,
    /// Calculators declared dead during the run, as `(rank, frame)` in
    /// declaration order. Empty for healthy runs.
    pub dead_ranks: Vec<(usize, u64)>,
    /// Particles lost to dead ranks (confiscated with the rank or sent
    /// towards it before death was detected).
    pub lost_particles: u64,
    /// Per-phase observability trace, present when the run was instrumented
    /// (`VirtualSim::with_phases` / `run_threaded_traced`). Covers *every*
    /// frame including warm-up (the `frames` field above filters warm-up).
    /// Deliberately **excluded** from [`fingerprint`](Self::fingerprint):
    /// the trace is derived measurement, not run output, and instrumented
    /// runs must fingerprint identically to bare runs.
    pub phases: Option<TraceReport>,
    /// Crash recoveries the engine performed (rollback to the last snapshot
    /// plus deterministic replay), in occurrence order. Empty unless
    /// [`crate::CheckpointConfig::recover`] is on and a crash tripped.
    /// Deliberately **excluded** from [`fingerprint`](Self::fingerprint)
    /// for the same reason as `phases`: recovery is machinery *around* the
    /// run, and the recovery gate's whole point is that a recovered run
    /// fingerprints identically to an uninterrupted one.
    pub recoveries: Vec<RecoveryEvent>,
}

impl RunReport {
    /// Mean alive population over non-warm-up frames; `0.0` when the run
    /// produced no reportable frames (fully degraded / crashed runs).
    pub fn mean_alive(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.alive as f64);
        }
        r.mean()
    }

    /// Mean particles migrated per frame; `0.0` on an empty run.
    pub fn mean_migrated(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.migrated as f64);
        }
        r.mean()
    }

    /// Mean migration KB per frame (the §5.1/§5.2 in-text numbers); `0.0`
    /// on an empty run.
    pub fn mean_migration_kb(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.migration_bytes as f64 / 1024.0);
        }
        r.mean()
    }

    /// Mean imbalance across frames; `0.0` on an empty run.
    pub fn mean_imbalance(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.imbalance);
        }
        r.mean()
    }

    /// Steady-state time: the sum of per-frame times over the reported
    /// (non-warm-up) frames. Speed-ups are computed on this, so the
    /// synthetic frame-0 pre-population burst (our steady-state bootstrap,
    /// which the paper's long-running animations do not have) cannot
    /// distort them. `0.0` on an empty run (the sum over nothing), which
    /// downstream speed-up math must treat as "no signal", not "infinitely
    /// fast" — see [`speedup_vs`](Self::speedup_vs).
    pub fn steady_time(&self) -> f64 {
        self.frames.iter().map(|f| f.frame_time).sum()
    }

    /// Speed-up of this run relative to a baseline time.
    ///
    /// Returns `0.0` — never NaN/∞ — when either side carries no signal:
    /// a zero or non-finite `total_time` (degraded run that never
    /// progressed) or a non-positive / non-finite baseline. NaN here would
    /// poison every table mean and the replay gates that hash them.
    pub fn speedup_vs(&self, baseline_time: f64) -> f64 {
        if self.total_time > 0.0
            && self.total_time.is_finite()
            && baseline_time > 0.0
            && baseline_time.is_finite()
        {
            baseline_time / self.total_time
        } else {
            0.0
        }
    }

    /// The per-phase breakdown table, if the run was instrumented.
    pub fn phase_table(&self) -> Option<String> {
        self.phases.as_ref().map(TraceReport::format_table)
    }

    /// Order-sensitive FNV-1a over every *run-output* field of the report,
    /// floats by bit pattern. Two reports fingerprint equal iff their run
    /// output is byte-identical — this is what the chaos matrix's replay
    /// gate compares, so no simulation-visible quantity (not even a
    /// diagnostic counter) may be exempt. The one deliberate exemption is
    /// [`phases`](Self::phases): the observability trace is a derived
    /// measurement *of* the run, and the quietness gate requires that
    /// attaching it never changes this value.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.label.as_bytes());
        mix(self.cluster.as_bytes());
        mix(&(self.calculators as u64).to_le_bytes());
        mix(&self.total_time.to_bits().to_le_bytes());
        mix(&(self.frames.len() as u64).to_le_bytes());
        for f in &self.frames {
            mix(&f.frame.to_le_bytes());
            mix(&f.alive.to_le_bytes());
            mix(&f.migrated.to_le_bytes());
            mix(&f.migration_bytes.to_le_bytes());
            mix(&f.balanced.to_le_bytes());
            mix(&f.frame_time.to_bits().to_le_bytes());
            mix(&f.imbalance.to_bits().to_le_bytes());
            mix(&f.checksum.to_le_bytes());
            mix(&f.timeouts.to_le_bytes());
        }
        mix(&self.traffic.messages.to_le_bytes());
        mix(&self.traffic.payload_bytes.to_le_bytes());
        for &(rank, frame) in &self.dead_ranks {
            mix(&(rank as u64).to_le_bytes());
            mix(&frame.to_le_bytes());
        }
        mix(&self.lost_particles.to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            label: "FS-DLB".into(),
            cluster: "test".into(),
            calculators: 4,
            total_time: 2.0,
            frames: vec![
                FrameReport {
                    frame: 0,
                    alive: 100,
                    migrated: 10,
                    migration_bytes: 700,
                    ..Default::default()
                },
                FrameReport {
                    frame: 1,
                    alive: 200,
                    migrated: 20,
                    migration_bytes: 1400,
                    ..Default::default()
                },
            ],
            traffic: TrafficStats::default(),
            dead_ranks: Vec::new(),
            lost_particles: 0,
            phases: None,
            recoveries: Vec::new(),
        }
    }

    #[test]
    fn means() {
        let r = report();
        assert_eq!(r.mean_alive(), 150.0);
        assert_eq!(r.mean_migrated(), 15.0);
        assert!((r.mean_migration_kb() - 1050.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn speedup() {
        let r = report();
        assert_eq!(r.speedup_vs(8.0), 4.0);
        let empty = RunReport::default();
        assert_eq!(empty.speedup_vs(8.0), 0.0);
    }

    #[test]
    fn empty_run_accessors_are_finite_zero() {
        // A fully degraded run (every frame lost to crashes) reports no
        // frames; every mean must be exactly 0.0 — never NaN, which would
        // poison fingerprint-based replay gates downstream.
        let empty = RunReport::default();
        for v in [
            empty.mean_alive(),
            empty.mean_migrated(),
            empty.mean_migration_kb(),
            empty.mean_imbalance(),
            empty.steady_time(),
            empty.speedup_vs(8.0),
        ] {
            assert_eq!(v, 0.0);
            assert!(v.is_finite());
        }
    }

    #[test]
    fn speedup_never_produces_nan_or_infinity() {
        let mut r = report();
        // Degenerate baselines.
        assert_eq!(r.speedup_vs(0.0), 0.0);
        assert_eq!(r.speedup_vs(-1.0), 0.0);
        assert_eq!(r.speedup_vs(f64::NAN), 0.0);
        assert_eq!(r.speedup_vs(f64::INFINITY), 0.0);
        // Degenerate own time.
        r.total_time = 0.0;
        assert_eq!(r.speedup_vs(8.0), 0.0);
        r.total_time = f64::NAN;
        assert_eq!(r.speedup_vs(8.0), 0.0);
        r.total_time = f64::INFINITY;
        assert_eq!(r.speedup_vs(8.0), 0.0);
    }

    #[test]
    fn steady_time_sums_reported_frames() {
        let mut r = report();
        r.frames[0].frame_time = 1.5;
        r.frames[1].frame_time = 2.5;
        assert_eq!(r.steady_time(), 4.0);
    }

    #[test]
    fn fingerprint_is_total_over_fields() {
        let base = report();
        assert_eq!(base.fingerprint(), report().fingerprint());
        let tweak = |f: &mut dyn FnMut(&mut RunReport)| {
            let mut r = report();
            f(&mut r);
            r.fingerprint()
        };
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.label.push('X')));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.total_time += 1e-9));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.frames[1].alive += 1));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.frames[0].timeouts += 1));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.dead_ranks.push((2, 7))));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.lost_particles += 1));
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.traffic.messages += 1));
        // -0.0 and 0.0 are different bit patterns and must not collide.
        assert_ne!(base.fingerprint(), tweak(&mut |r| r.frames[0].frame_time = -0.0));
    }

    #[test]
    fn fingerprint_is_blind_to_the_phase_trace() {
        // The quietness gate's foundation: attaching (or dropping) the
        // observability trace must not move the fingerprint.
        let bare = report();
        let mut traced = report();
        let mut rec = psa_trace::Recorder::enabled(6, psa_trace::ClockKind::Virtual);
        rec.phase(0, 0, psa_trace::Phase::Compute, 1.0);
        traced.phases = rec.finish();
        assert!(traced.phases.is_some());
        assert_eq!(bare.fingerprint(), traced.fingerprint());
    }

    #[test]
    fn fingerprint_is_blind_to_recoveries() {
        // The recovery gate's foundation: a recovered run must fingerprint
        // identically to the uninterrupted run it replayed, so the recovery
        // log (like the phase trace) stays outside the fingerprint.
        let bare = report();
        let mut recovered = report();
        recovered.recoveries.push(RecoveryEvent {
            rank: 2,
            frame: 7,
            snapshot_frame: 5,
            frames_replayed: 2,
            particles_restored: 123,
            replay_virtual_secs: 0.25,
        });
        assert_eq!(bare.fingerprint(), recovered.fingerprint());
    }

    #[test]
    fn scale_count_rounds_to_nearest_instead_of_truncating() {
        // 7 lost scaled particles at scale 12.5 are 87.5 real particles;
        // the old truncating cast reported 87 and dropped one.
        assert_eq!(scale_count(7, 12.5), 88);
        assert_eq!(scale_count(3, 1.0 / 3.0), 1);
        // Exact multiples stay exact.
        assert_eq!(scale_count(10, 4.0), 40);
        assert_eq!(scale_count(0, 12.5), 0);
        // Scale 1.0 (no scaling) is the identity.
        assert_eq!(scale_count(41, 1.0), 41);
        // Degenerate scales saturate instead of wrapping or panicking.
        assert_eq!(scale_count(u64::MAX, 2.0), u64::MAX);
        assert_eq!(scale_count(5, f64::NAN), 0);
    }
}
