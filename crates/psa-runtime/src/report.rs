//! Run reports.

use netsim::TrafficStats;
use psa_math::stats::Running;

/// Per-frame aggregate measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FrameReport {
    pub frame: u64,
    /// Alive particles across all systems at frame end.
    pub alive: u64,
    /// Particles that changed calculator this frame (migration).
    pub migrated: u64,
    /// Migration payload bytes this frame.
    pub migration_bytes: u64,
    /// Particles moved by the load balancer this frame.
    pub balanced: u64,
    /// Virtual (or wall) seconds this frame added to the makespan.
    pub frame_time: f64,
    /// Coefficient of imbalance `max/mean − 1` across calculators.
    pub imbalance: f64,
    /// Order-sensitive FNV-1a over every particle state the image generator
    /// received this frame (0 when the executor does not compute it). Two
    /// same-seed runs must agree bit-for-bit — the determinism regression
    /// tests compare these.
    pub checksum: u64,
}

/// The result of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Paper-style config label (`FS-DLB` …).
    pub label: String,
    /// Cluster description (`8*B(16P.)` …) or "sequential".
    pub cluster: String,
    /// Number of calculator processes (1 for sequential).
    pub calculators: usize,
    /// Total makespan in virtual (or wall) seconds.
    pub total_time: f64,
    /// Per-frame measurements, in frame order.
    pub frames: Vec<FrameReport>,
    /// Fabric-level traffic totals.
    pub traffic: TrafficStats,
}

impl RunReport {
    /// Mean alive population over non-warm-up frames.
    pub fn mean_alive(&self) -> f64 {
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.alive as f64);
        }
        r.mean()
    }

    /// Mean particles migrated per frame.
    pub fn mean_migrated(&self) -> f64 {
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.migrated as f64);
        }
        r.mean()
    }

    /// Mean migration KB per frame (the §5.1/§5.2 in-text numbers).
    pub fn mean_migration_kb(&self) -> f64 {
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.migration_bytes as f64 / 1024.0);
        }
        r.mean()
    }

    /// Mean imbalance across frames.
    pub fn mean_imbalance(&self) -> f64 {
        let mut r = Running::new();
        for f in &self.frames {
            r.push(f.imbalance);
        }
        r.mean()
    }

    /// Steady-state time: the sum of per-frame times over the reported
    /// (non-warm-up) frames. Speed-ups are computed on this, so the
    /// synthetic frame-0 pre-population burst (our steady-state bootstrap,
    /// which the paper's long-running animations do not have) cannot
    /// distort them.
    pub fn steady_time(&self) -> f64 {
        self.frames.iter().map(|f| f.frame_time).sum()
    }

    /// Speed-up of this run relative to a baseline time.
    pub fn speedup_vs(&self, baseline_time: f64) -> f64 {
        if self.total_time > 0.0 {
            baseline_time / self.total_time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            label: "FS-DLB".into(),
            cluster: "test".into(),
            calculators: 4,
            total_time: 2.0,
            frames: vec![
                FrameReport {
                    frame: 0,
                    alive: 100,
                    migrated: 10,
                    migration_bytes: 700,
                    ..Default::default()
                },
                FrameReport {
                    frame: 1,
                    alive: 200,
                    migrated: 20,
                    migration_bytes: 1400,
                    ..Default::default()
                },
            ],
            traffic: TrafficStats::default(),
        }
    }

    #[test]
    fn means() {
        let r = report();
        assert_eq!(r.mean_alive(), 150.0);
        assert_eq!(r.mean_migrated(), 15.0);
        assert!((r.mean_migration_kb() - 1050.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn speedup() {
        let r = report();
        assert_eq!(r.speedup_vs(8.0), 4.0);
        let empty = RunReport::default();
        assert_eq!(empty.speedup_vs(8.0), 0.0);
    }

    #[test]
    fn steady_time_sums_reported_frames() {
        let mut r = report();
        r.frames[0].frame_time = 1.5;
        r.frames[1].frame_time = 2.5;
        assert_eq!(r.steady_time(), 4.0);
    }
}
