//! Run configuration.

use crate::balance::BalancerConfig;
use crate::checkpoint::CheckpointConfig;

/// Whether the simulated space is restricted to the particle systems'
/// extent (paper: "FS", finite space) or left unbounded ("IS", infinite
/// space). With IS, static decomposition assigns almost all particles to
/// the central domain(s) — the Table 1 pathology.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpaceMode {
    #[default]
    Finite,
    Infinite,
}

/// Static (initial even split, never changed) vs dynamic load balancing.
///
/// Every dynamic variant carries a [`BalancerConfig`] and selects one
/// strategy behind the [`crate::balance::Balancer`] trait (see
/// [`crate::balancers::strategy_for`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BalanceMode {
    /// SLB: domains stay at their initial even split.
    Static,
    /// DLB: the paper's centralized neighbor-pair balancer (§3.2.5).
    Dynamic(BalancerConfig),
    /// The paper's future-work variant (§6): no manager involvement —
    /// neighbors exchange load information directly and every pair decides
    /// independently (half-excess diffusion), so a calculator may send and
    /// receive in the same round.
    Decentralized(BalancerConfig),
    /// Damped first-order diffusion: every pair moves `α ×` its excess per
    /// round, pair-locally like [`BalanceMode::Decentralized`].
    Diffusive(BalancerConfig),
    /// Hierarchical/SFC: contiguous rank groups along the 1-D domain curve,
    /// balanced across groups (even rounds) then within (odd rounds);
    /// manager-mediated like [`BalanceMode::Dynamic`].
    Hierarchical(BalancerConfig),
}

impl BalanceMode {
    pub fn dynamic() -> Self {
        BalanceMode::Dynamic(BalancerConfig::default())
    }

    pub fn decentralized() -> Self {
        BalanceMode::Decentralized(BalancerConfig::default())
    }

    pub fn diffusive() -> Self {
        BalanceMode::Diffusive(BalancerConfig::default())
    }

    pub fn hierarchical() -> Self {
        BalanceMode::Hierarchical(BalancerConfig::default())
    }

    pub fn is_dynamic(&self) -> bool {
        !matches!(self, BalanceMode::Static)
    }

    /// The strategy's tuning, `None` for static balancing.
    pub fn balancer_config(&self) -> Option<&BalancerConfig> {
        match self {
            BalanceMode::Static => None,
            BalanceMode::Dynamic(b)
            | BalanceMode::Decentralized(b)
            | BalanceMode::Diffusive(b)
            | BalanceMode::Hierarchical(b) => Some(b),
        }
    }

    /// Does this mode decide pair-locally, without a manager round-trip?
    pub fn is_decentralized(&self) -> bool {
        matches!(self, BalanceMode::Decentralized(_) | BalanceMode::Diffusive(_))
    }

    /// Short label used in table headers: SLB / DLB / DEC / DIF / SFC.
    pub fn label(&self) -> &'static str {
        match self {
            BalanceMode::Static => "SLB",
            BalanceMode::Dynamic(_) => "DLB",
            BalanceMode::Decentralized(_) => "DEC",
            BalanceMode::Diffusive(_) => "DIF",
            BalanceMode::Hierarchical(_) => "SFC",
        }
    }
}

/// How multiple particle systems are combined within one frame — the §3.3
/// observation that "depending on the form used, the processing may be more
/// or less efficient".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SystemSchedule {
    /// Figure 2 verbatim: each system runs its full protocol before the
    /// next system starts. The manager's post-exchange work on system `s`
    /// therefore gates system `s + 1` on every calculator — per-system load
    /// spikes serialize.
    #[default]
    PerSystem,
    /// Phase-batched: creation for all systems first, then calculus for
    /// all, then exchange, balancing, shipping. Calculators absorb
    /// per-system spikes across the frame (only the frame barrier
    /// synchronizes), at the cost of buffering every system's state.
    Batched,
}

/// How exchange-phase traffic fans out between calculators.
///
/// The paper's 8-calculator runs send an exchange message to *every* peer
/// each system each frame (even when empty) — simple, and at paper scale
/// the empty-message overhead is noise. At 1,024 ranks the dense pattern is
/// n² messages per system per frame and dominates everything, so the
/// event-driven executor defaults to sparse: only calculators that actually
/// received migrating particles get a message, and the receive side drains
/// exactly the senders with queued traffic. Dense and sparse runs are *not*
/// fingerprint-comparable (empty messages carry virtual-time cost), which
/// is why dense stays the default: it reproduces `VirtualSim` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Figure 2 verbatim: every calculator messages every other calculator
    /// each system, empty batches included.
    Dense,
    /// Only non-empty migration batches go on the wire; receivers drain
    /// queued senders instead of polling all peers. Required for 1,000+
    /// rank sweeps.
    Sparse,
    /// Resolve by rank count when the run starts: [`ExchangeMode::Dense`]
    /// below [`ExchangeMode::AUTO_SPARSE_THRESHOLD`] calculators (paper
    /// scale — fingerprints reproduce `VirtualSim` exactly),
    /// [`ExchangeMode::Sparse`] at or above it (the n² empty-message
    /// pattern would dominate). A run that auto-selects sparse fingerprints
    /// identically to one configured sparse explicitly.
    #[default]
    Auto,
}

impl ExchangeMode {
    /// Calculator count at which `Auto` switches to `Sparse`.
    pub const AUTO_SPARSE_THRESHOLD: usize = 64;

    /// The concrete mode (`Dense` or `Sparse`) for a run with
    /// `calculators` ranks.
    pub fn resolved(self, calculators: usize) -> ExchangeMode {
        match self {
            ExchangeMode::Auto => {
                if calculators >= Self::AUTO_SPARSE_THRESHOLD {
                    ExchangeMode::Sparse
                } else {
                    ExchangeMode::Dense
                }
            }
            m => m,
        }
    }
}

/// What a calculator reports as its per-frame processing "time" (§3.2.4).
///
/// The paper measures wall clock; wall clock makes dynamic-balancing
/// decisions depend on scheduler noise, so two same-seed threaded runs can
/// balance differently. [`LoadMetric::CountProportional`] reports the
/// post-exchange particle count instead — the balancer sees a load signal
/// that is a pure function of simulation state, making DLB runs
/// bit-reproducible (the determinism regression tests rely on this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadMetric {
    /// Measured wall-clock compute time (the paper's setup).
    #[default]
    WallClock,
    /// Deterministic: load "time" is the particle count.
    CountProportional,
}

/// Intra-rank parallel compute configuration: how each calculator runs its
/// action list through the chunked kernel (`psa_core::kernel`).
///
/// The default (`workers: 1, chunk: 0`) is the legacy serial path — one RNG
/// stream across the whole action list — which keeps every seed-calibrated
/// table bit-identical. Setting `chunk > 0` switches to chunk-keyed RNG
/// streams, whose results are byte-identical for **any** `workers` value;
/// `workers > 1` with `chunk == 0` uses `psa_core::kernel::DEFAULT_CHUNK`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Compute-phase worker threads per calculator (1 = in-place, no spawn).
    pub workers: usize,
    /// Particles per kernel chunk; 0 = legacy serial stream.
    pub chunk: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { workers: 1, chunk: 0 }
    }
}

impl ParallelConfig {
    /// Chunked mode with the given worker count and the default chunk size.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1);
        ParallelConfig { workers, chunk: psa_core::kernel::DEFAULT_CHUNK }
    }
}

/// Full configuration of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// Animation length in frames.
    pub frames: u64,
    /// Frame time step, seconds of simulated time.
    pub dt: f32,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    pub space: SpaceMode,
    pub balance: BalanceMode,
    /// Sub-domain buckets per calculator per system (paper §4 storage).
    pub buckets: usize,
    /// Multi-system combination strategy (§3.3).
    pub schedule: SystemSchedule,
    /// Warm-up frames excluded from per-frame statistics (population
    /// ramp-up).
    pub warmup: u64,
    /// Load signal the threaded executor's calculators report (the virtual
    /// executor is always deterministic regardless).
    pub load_metric: LoadMetric,
    /// Wall-clock seconds a threaded protocol receive may wait before the
    /// peer is reported as [`netsim::TransportError::Timeout`] (lost-peer
    /// hardening; generous by default so slow CI machines never trip it).
    pub recv_timeout_secs: f64,
    /// Intra-rank compute parallelism (the psa-core chunked kernel).
    pub parallel: ParallelConfig,
    /// Exchange-phase fan-out (dense reproduces the paper; sparse scales).
    pub exchange: ExchangeMode,
    /// Snapshot cadence and crash-recovery policy (off by default — the
    /// paper's runs restart from frame 0 on failure).
    pub checkpoint: CheckpointConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            frames: 30,
            dt: 1.0 / 30.0,
            seed: 0x5EED,
            space: SpaceMode::Finite,
            balance: BalanceMode::dynamic(),
            buckets: 8,
            schedule: SystemSchedule::PerSystem,
            warmup: 0,
            load_metric: LoadMetric::WallClock,
            recv_timeout_secs: 30.0,
            parallel: ParallelConfig::default(),
            exchange: ExchangeMode::Auto,
            checkpoint: CheckpointConfig::default(),
        }
    }
}

impl RunConfig {
    /// Paper-style config label, e.g. `FS-DLB`.
    pub fn label(&self) -> String {
        let space = match self.space {
            SpaceMode::Finite => "FS",
            SpaceMode::Infinite => "IS",
        };
        format!("{space}-{}", self.balance.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        let mut c = RunConfig::default();
        assert_eq!(c.label(), "FS-DLB");
        c.space = SpaceMode::Infinite;
        c.balance = BalanceMode::Static;
        assert_eq!(c.label(), "IS-SLB");
    }

    #[test]
    fn dynamic_detection() {
        assert!(BalanceMode::dynamic().is_dynamic());
        assert!(BalanceMode::decentralized().is_dynamic());
        assert!(BalanceMode::diffusive().is_dynamic());
        assert!(BalanceMode::hierarchical().is_dynamic());
        assert!(!BalanceMode::Static.is_dynamic());
        assert!(BalanceMode::decentralized().is_decentralized());
        assert!(BalanceMode::diffusive().is_decentralized());
        assert!(!BalanceMode::dynamic().is_decentralized());
        assert!(!BalanceMode::hierarchical().is_decentralized());
        assert!(BalanceMode::Static.balancer_config().is_none());
        assert!(BalanceMode::diffusive().balancer_config().is_some());
    }

    #[test]
    fn labels_cover_all_modes() {
        assert_eq!(BalanceMode::Static.label(), "SLB");
        assert_eq!(BalanceMode::dynamic().label(), "DLB");
        assert_eq!(BalanceMode::decentralized().label(), "DEC");
        assert_eq!(BalanceMode::diffusive().label(), "DIF");
        assert_eq!(BalanceMode::hierarchical().label(), "SFC");
        assert_eq!(SystemSchedule::default(), SystemSchedule::PerSystem);
    }

    #[test]
    fn auto_exchange_resolves_by_rank_count() {
        assert_eq!(RunConfig::default().exchange, ExchangeMode::Auto);
        assert_eq!(ExchangeMode::Auto.resolved(8), ExchangeMode::Dense);
        assert_eq!(ExchangeMode::Auto.resolved(63), ExchangeMode::Dense);
        assert_eq!(ExchangeMode::Auto.resolved(64), ExchangeMode::Sparse);
        assert_eq!(ExchangeMode::Auto.resolved(1024), ExchangeMode::Sparse);
        // Explicit choices are never overridden.
        assert_eq!(ExchangeMode::Dense.resolved(1024), ExchangeMode::Dense);
        assert_eq!(ExchangeMode::Sparse.resolved(4), ExchangeMode::Sparse);
    }
}
