//! The shared Figure-2 protocol implementation.
//!
//! Every executor in this crate — sequential, threaded, virtual-time, and
//! the event-driven simulator in `psa-desim` — drives the *same* frame
//! protocol (creation → addition → calculus → collision → exchange → loads
//! → balance → ship → render). This module is the single home for that
//! logic; the executors are thin shells that choose a fabric and a clock:
//!
//! * [`Engine`] is the protocol state machine, generic over a [`Fabric`].
//!   `VirtualSim` instantiates it over the queue-backed
//!   [`FaultyVirtualNet`]; `psa-desim`'s `EventSim` instantiates it over an
//!   event-heap fabric. Both charge costs through the identical
//!   `netsim::WireState` arithmetic, which is why their reports are
//!   fingerprint-identical.
//! * `calculator_main` / `manager_main` / `image_generator_main` are
//!   the SPMD role bodies the threaded executor spawns on real threads.
//! * `stream` and the RNG tags are the one definition of the seed → RNG
//!   derivation every executor shares (a copy that drifted would silently
//!   fork the particle trajectories).
//!
//! The exchange phase supports two fan-outs ([`ExchangeMode`]): the paper's
//! dense every-pair pattern (bit-identical to the historical executor), and
//! a sparse pattern that only ships non-empty batches and drains exactly
//! the queued senders — the difference between O(n²) and O(migrants)
//! messages per frame, which is what lets the event-driven executor sweep
//! 1,024 ranks.

use std::sync::Arc;
use std::time::Duration;

use cluster_sim::{CostModel, Placement};
use netsim::{
    FailedSend, FaultInjector, FaultPolicy, FaultyVirtualNet, PlanInjector, ThreadEndpoint,
    TrafficStats, TransportError,
};
use psa_core::invariants::{self, StateHash};
use psa_core::kernel;
use psa_core::{DomainMap, Particle, SubDomainStore, SystemId, WIRE_BYTES};
use psa_math::stats::imbalance;
use psa_math::{Axis, Interval, Rng64, Scalar};
use psa_render::image::{frame_filename, write_ppm};
use psa_render::{render_objects, render_particles, render_streaks, Framebuffer};
use psa_trace::{ClockKind, Counter, FaultKind, Phase, Recorder};

use crate::balance::{self, LoadInfo, Transfer};
use crate::balancers;
use crate::checkpoint::{
    CalcSnapshot, EngineSnapshot, FabricCheckpoint, RecoveryEvent, StoreSnapshot,
};
use crate::config::{ExchangeMode, LoadMetric, RunConfig, SpaceMode, SystemSchedule};
use crate::msg::{Msg, ProtocolError};
use crate::report::{scale_count, FrameReport, RunReport};
use crate::scene::Scene;
use crate::threaded::RenderSink;
use crate::trace::{figure2_passes, ProtocolEvent, Trace};

/// RNG stream tags (see [`stream`]).
pub(crate) const TAG_CREATE: u64 = 0xC0;
pub(crate) const TAG_ACTIONS: u64 = 0xAC;

/// The decomposition axis (paper: one axis of the plane or space).
pub(crate) const AXIS: Axis = Axis::X;

/// Derive the deterministic stream for (tag, frame, system, rank).
pub(crate) fn stream(seed: u64, tag: u64, frame: u64, sys: usize, rank: usize) -> Rng64 {
    Rng64::new(seed).split(tag).split(frame).split(sys as u64).split(rank as u64)
}

/// The rank → node map the simulated fabrics are built from: one entry per
/// calculator in placement order, then the front-end node twice (manager
/// and image generator share it, paper §4). Returns `(node_of, node_count)`.
pub fn node_layout(placement: &Placement) -> (Vec<usize>, usize) {
    let mut node_of: Vec<usize> = placement.ranks.iter().map(|r| r.node).collect();
    node_of.push(placement.frontend_node);
    node_of.push(placement.frontend_node);
    (node_of, placement.node_count)
}

/// What the [`Engine`] needs from a simulated message fabric: directed
/// sends and receives, per-rank virtual clocks, and the fault-injection
/// queries the degraded-mode protocol consults. Implemented by the
/// queue-stepped [`FaultyVirtualNet`] and by `psa-desim`'s event-heap
/// fabric; both charge time through the shared `netsim::WireState`, so an
/// `Engine` run is bit-identical across conforming fabrics.
pub trait Fabric {
    /// Queue a message; the fabric charges occupancy and latency. A
    /// transient injected failure returns the message for retry.
    fn send(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), FailedSend<Msg>>;
    /// Directed receive from a peer that must have sent (protocol
    /// lock-step); an empty queue is a protocol bug, not a wait.
    fn recv(&mut self, to: usize, from: usize) -> Result<Msg, TransportError>;
    /// Directed receive with a bounded virtual wait: if nothing is queued
    /// the wait is charged and `Timeout` returned.
    fn recv_deadline(&mut self, to: usize, from: usize, wait: f64) -> Result<Msg, TransportError>;
    /// Drain the (to, from) queue without touching clocks (crash cleanup).
    fn take_queued(&mut self, to: usize, from: usize) -> Vec<Msg>;
    /// Ranks with traffic queued toward `to`, ascending (sparse exchange).
    fn queued_senders(&mut self, to: usize) -> Vec<usize>;
    fn now(&self, rank: usize) -> f64;
    fn advance(&mut self, rank: usize, seconds: f64);
    fn barrier(&mut self, ranks: &[usize]);
    fn makespan(&self) -> f64;
    fn ranks(&self) -> usize;
    fn stats(&self) -> TrafficStats;
    /// Injected compute slowdown factor for `rank` (1.0 when healthy).
    fn compute_factor(&self, rank: usize) -> f64;
    /// Injected one-shot stall for `(rank, frame)`, in virtual seconds.
    fn stall_seconds(&self, rank: usize, frame: u64) -> f64;
    /// Frame at which `rank` fail-stops, if the plan crashes it.
    fn crash_frame(&self, rank: usize) -> Option<u64>;
    /// Capture the fabric's frame-boundary state: the shared wire model
    /// (clocks, occupancy, traffic counters) plus the injector's draw-stream
    /// cursors and any fabric-specific extras. In-flight messages are never
    /// captured — see [`crate::checkpoint::FabricCheckpoint`].
    fn save_fabric(&self) -> FabricCheckpoint;
    /// Rewind the fabric to a previously captured checkpoint, dropping any
    /// queued messages (replay from a frame boundary regenerates traffic
    /// deterministically).
    fn load_fabric(&mut self, ck: &FabricCheckpoint);
}

impl Fabric for FaultyVirtualNet<Msg, PlanInjector> {
    // Inherent methods take precedence inside the impl, so each body
    // delegates to the struct's own method of the same name.
    fn send(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), FailedSend<Msg>> {
        self.send(from, to, msg)
    }

    fn recv(&mut self, to: usize, from: usize) -> Result<Msg, TransportError> {
        self.recv(to, from)
    }

    fn recv_deadline(&mut self, to: usize, from: usize, wait: f64) -> Result<Msg, TransportError> {
        self.recv_deadline(to, from, wait)
    }

    fn take_queued(&mut self, to: usize, from: usize) -> Vec<Msg> {
        self.take_queued(to, from)
    }

    fn queued_senders(&mut self, to: usize) -> Vec<usize> {
        FaultyVirtualNet::queued_senders(self, to)
    }

    fn now(&self, rank: usize) -> f64 {
        self.now(rank)
    }

    fn advance(&mut self, rank: usize, seconds: f64) {
        self.advance(rank, seconds);
    }

    fn barrier(&mut self, ranks: &[usize]) {
        self.barrier(ranks);
    }

    fn makespan(&self) -> f64 {
        self.makespan()
    }

    fn ranks(&self) -> usize {
        self.ranks()
    }

    fn stats(&self) -> TrafficStats {
        self.stats()
    }

    fn compute_factor(&self, rank: usize) -> f64 {
        self.injector().compute_factor(rank)
    }

    fn stall_seconds(&self, rank: usize, frame: u64) -> f64 {
        self.injector().stall_seconds(rank, frame)
    }

    fn crash_frame(&self, rank: usize) -> Option<u64> {
        self.injector().crash_frame(rank)
    }

    fn save_fabric(&self) -> FabricCheckpoint {
        let (wire, injector_streams) = self.fabric_checkpoint();
        FabricCheckpoint { wire, injector_streams, extra: Vec::new() }
    }

    fn load_fabric(&mut self, ck: &FabricCheckpoint) {
        self.restore_fabric(&ck.wire, &ck.injector_streams);
    }
}

/// Receive a *required* message (the sender is known to be alive): a
/// wrong kind is an `UnexpectedMessage`, silence is a `Timeout`.
macro_rules! expect_virt {
    ($self:ident, $to:expr, $from:expr, $frame:expr, $pat:pat => $out:expr, $expected:expr) => {
        match $self.recv_from($to, $from)? {
            Some($pat) => $out,
            Some(other) => {
                return Err(ProtocolError::UnexpectedMessage {
                    role: "virtual",
                    rank: $to,
                    frame: $frame,
                    expected: $expected,
                    got: other.kind(),
                })
            }
            None => {
                return Err(ProtocolError::Timeout {
                    role: "virtual",
                    rank: $to,
                    frame: $frame,
                    peer: $from,
                })
            }
        }
    };
}

/// Per-calculator state.
struct CalcState {
    /// One sub-domain store per system.
    stores: Vec<SubDomainStore>,
    /// Local replica of every system's domain map (all processes know all
    /// domains, paper §3.1.4). `Arc`-shared: after a broadcast every
    /// calculator holds the same map, and at 1,024 ranks × 100 systems the
    /// per-rank copies would dominate memory.
    domains: Vec<Arc<DomainMap>>,
    /// This frame's per-system compute time (pre-exchange population).
    compute_time: Vec<f64>,
    /// Population the compute time was measured on.
    pre_count: Vec<usize>,
}

/// The running frame machinery: every rank's state plus the fabric.
///
/// Generic over the [`Fabric`] so the virtual-time executor (queue-stepped)
/// and the event-driven executor (heap-scheduled) share every line of
/// protocol logic.
pub struct Engine<F: Fabric> {
    scene: Scene,
    cfg: RunConfig,
    cost: CostModel,
    net: F,
    policy: FaultPolicy,
    calcs: Vec<CalcState>,
    mgr_domains: Vec<DomainMap>,
    speeds: Vec<f64>,
    fe_speed: f64,
    scale: f64,
    n: usize,
    mgr: usize,
    ig: usize,
    /// Evaluated (non-short-circuited) balance rounds so far; drives the
    /// paper's start-pair alternation and the hierarchical level schedule.
    round: u64,
    /// Per-system consecutive zero-order rounds (balance short-circuit).
    idle_rounds: Vec<u32>,
    /// Balance rounds short-circuited in the current frame.
    frame_skips: u64,
    /// Exchange fan-out resolved against the rank count
    /// ([`ExchangeMode::Auto`] picks dense below the threshold, sparse at
    /// or above it).
    sparse: bool,
    /// Rank `c` has fail-stopped (it no longer computes, sends or
    /// receives); peers may not have noticed yet.
    crashed: Vec<bool>,
    /// The manager has declared rank `c` dead: its slice is collapsed and
    /// nobody addresses it any more.
    dead: Vec<bool>,
    /// Consecutive missed load reports per calculator.
    missed: Vec<u32>,
    /// Rank `c` has been recovered from a snapshot (or its crash predates
    /// the snapshot and is unrecoverable): its planned crash — a permanent
    /// plan entry — must not trip again after the rollback. Recovery
    /// metadata, deliberately *not* part of snapshots.
    recovered: Vec<bool>,
    /// The most recent frame-boundary snapshot, refreshed every
    /// `cfg.checkpoint.interval` frames when checkpointing is on.
    last_snapshot: Option<EngineSnapshot>,
    /// Recoveries performed so far (reported, fingerprint-exempt).
    recoveries: Vec<RecoveryEvent>,
    /// `(rank, frame)` death declarations, in order.
    dead_events: Vec<(usize, u64)>,
    /// Real (unscaled) particles lost to crashed/dead ranks.
    lost: u64,
    /// Deadline-expired receives in the current frame.
    frame_timeouts: u64,
    /// Next frame [`Engine::step_frame`] will run (== `cfg.frames` once the
    /// animation is complete).
    next_frame: u64,
    /// Makespan at the end of the previous stepped frame (per-frame time
    /// deltas are computed against this).
    prev_makespan: f64,
    trace: Trace,
    /// Per-phase observability recorder (quiet: reads clocks, never moves
    /// them). Disabled unless the executor asked for phases.
    rec: Recorder,
    /// Aggregate transport counters at the top of the current frame
    /// (recorder bookkeeping only).
    frame_stats_mark: TrafficStats,
    /// Transient send retries in the current frame.
    frame_retries: u64,
    /// Balancer transfer orders issued in the current frame.
    frame_orders: u64,
    /// Kernel chunks processed in the current frame (0 on the legacy
    /// serial path).
    frame_chunks: u64,
    /// Frame-loop scratch (reused, so the steady-state hot path stages
    /// creation and exchange without allocating).
    newborn_scratch: Vec<Particle>,
    create_batches: Vec<Vec<Particle>>,
    leavers_scratch: Vec<Particle>,
    /// Exchange staging: one spine per destination, drained every rank.
    exchange_dests: Vec<Vec<Particle>>,
    /// Destinations touched by the current rank's routing (sparse mode
    /// ships exactly these instead of walking all n).
    touched_scratch: Vec<usize>,
}

impl<F: Fabric> Engine<F> {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the executors' fields
    pub fn new(
        scene: Scene,
        cfg: RunConfig,
        placement: &Placement,
        cost: CostModel,
        net: F,
        policy: FaultPolicy,
        trace: Trace,
        instrument: bool,
    ) -> Self {
        let n = placement.calculators();
        let n_sys = scene.systems.len();
        assert_eq!(net.ranks(), n + 2, "fabric must cover calculators + manager + image generator");
        let space_for = |sys: usize| -> Interval {
            match cfg.space {
                SpaceMode::Finite => scene.systems[sys].spec.space,
                SpaceMode::Infinite => Interval::INFINITE,
            }
        };
        let mgr_domains: Vec<DomainMap> =
            (0..n_sys).map(|s| DomainMap::split_even(space_for(s), AXIS, n)).collect();
        let shared0: Vec<Arc<DomainMap>> = mgr_domains.iter().cloned().map(Arc::new).collect();
        let calcs: Vec<CalcState> = (0..n)
            .map(|c| CalcState {
                stores: (0..n_sys)
                    .map(|s| SubDomainStore::new(mgr_domains[s].slice(c), AXIS, cfg.buckets))
                    .collect(),
                domains: shared0.clone(),
                compute_time: vec![0.0; n_sys],
                pre_count: vec![0; n_sys],
            })
            .collect();
        Engine {
            speeds: placement.ranks.iter().map(|r| r.speed).collect(),
            fe_speed: placement.frontend_speed,
            scale: cost.scale,
            n,
            mgr: n,
            ig: n + 1,
            round: 0,
            idle_rounds: vec![0; n_sys],
            frame_skips: 0,
            sparse: cfg.exchange.resolved(n) == ExchangeMode::Sparse,
            crashed: vec![false; n],
            dead: vec![false; n],
            missed: vec![0; n],
            recovered: vec![false; n],
            last_snapshot: None,
            recoveries: Vec::new(),
            dead_events: Vec::new(),
            lost: 0,
            frame_timeouts: 0,
            next_frame: 0,
            prev_makespan: 0.0,
            scene,
            cfg,
            cost,
            net,
            policy,
            calcs,
            mgr_domains,
            trace,
            rec: if instrument {
                Recorder::enabled(n + 2, ClockKind::Virtual)
            } else {
                Recorder::disabled()
            },
            frame_stats_mark: TrafficStats::default(),
            frame_retries: 0,
            frame_orders: 0,
            frame_chunks: 0,
            newborn_scratch: Vec::new(),
            create_batches: (0..n).map(|_| Vec::new()).collect(),
            leavers_scratch: Vec::new(),
            exchange_dests: (0..n).map(|_| Vec::new()).collect(),
            touched_scratch: Vec::new(),
        }
    }

    /// The fabric, for executor-side diagnostics (e.g. event-loop stats).
    pub fn fabric(&self) -> &F {
        &self.net
    }

    /// Run `f` and charge each rank's virtual-clock delta to `phase`.
    ///
    /// A pure *read* of the fabric: clocks are snapshotted before and after
    /// `f`, never moved. When the recorder is disabled `f` runs with zero
    /// overhead — no snapshots — so bare runs pay nothing.
    fn record_phase<T>(&mut self, frame: u64, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        if !self.rec.is_enabled() {
            return f(self);
        }
        let ranks = self.net.ranks();
        let before: Vec<f64> = (0..ranks).map(|r| self.net.now(r)).collect();
        let out = f(self);
        for (r, &t0) in before.iter().enumerate() {
            let dt = self.net.now(r) - t0;
            if dt > 0.0 {
                self.rec.phase(frame, r, phase, dt);
            }
        }
        out
    }

    /// Flush the frame's event counters into the recorder (no-op when
    /// disabled beyond resetting the frame-local tallies).
    fn flush_frame_counters(&mut self, frame: u64, fr: &FrameReport) {
        let retries = std::mem::take(&mut self.frame_retries);
        let orders = std::mem::take(&mut self.frame_orders);
        let chunks = std::mem::take(&mut self.frame_chunks);
        let skips = std::mem::take(&mut self.frame_skips);
        if !self.rec.is_enabled() {
            return;
        }
        let now = self.net.stats();
        self.rec.add(frame, Counter::Messages, now.messages - self.frame_stats_mark.messages);
        self.rec.add(
            frame,
            Counter::PayloadBytes,
            now.payload_bytes - self.frame_stats_mark.payload_bytes,
        );
        self.rec.add(frame, Counter::Migrated, fr.migrated);
        self.rec.add(frame, Counter::MigrationBytes, fr.migration_bytes);
        self.rec.add(frame, Counter::Timeouts, fr.timeouts);
        self.rec.add(frame, Counter::SendRetries, retries);
        self.rec.add(frame, Counter::BalanceOrders, orders);
        self.rec.add(frame, Counter::ComputeChunks, chunks);
        self.rec.add(frame, Counter::BalanceSkips, skips);
    }

    /// The ranks that still take part in barriers: running calculators plus
    /// the manager (the manager and image generator never crash — they are
    /// the paper's front-end, assumed reliable).
    fn active_set(&self) -> Vec<usize> {
        (0..self.n).filter(|&c| !self.crashed[c]).chain([self.mgr]).collect()
    }

    fn space_of(&self, sys: usize) -> Interval {
        match self.cfg.space {
            SpaceMode::Finite => self.scene.systems[sys].spec.space,
            SpaceMode::Infinite => Interval::INFINITE,
        }
    }

    /// Send with the degraded-mode rules: sends to a declared-dead rank are
    /// dropped (particle payloads counted as lost); sends to a crashed but
    /// undeclared rank are queued as usual (nobody knows yet) with their
    /// particles already counted — the queue is purged uncounted at
    /// declaration. Transient injector failures retry with exponential
    /// backoff charged in virtual ticks.
    fn send_to(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), ProtocolError> {
        if to < self.n && (self.dead[to] || self.crashed[to]) {
            if let Msg::Particles { batch, .. } = &msg {
                self.lost += batch.len() as u64;
            }
            if self.dead[to] {
                return Ok(());
            }
        }
        let mut msg = msg;
        let mut attempt: u32 = 0;
        loop {
            match self.net.send(from, to, msg) {
                Ok(()) => return Ok(()),
                Err(failed) => {
                    attempt += 1;
                    self.frame_retries += 1;
                    if attempt >= self.policy.send_attempts {
                        return Err(failed.error.into());
                    }
                    msg = failed.msg;
                    // Exponential backoff, charged as virtual time.
                    self.net.advance(from, self.policy.backoff * (1u64 << (attempt - 1)) as f64);
                }
            }
        }
    }

    /// Receive with the degraded-mode rules: a declared-dead sender yields
    /// `None` immediately; a crashed-but-undeclared sender is waited on
    /// with a bounded deadline (the wait is charged, a miss is counted and
    /// yields `None`); a healthy sender must have delivered.
    fn recv_from(&mut self, to: usize, from: usize) -> Result<Option<Msg>, ProtocolError> {
        if from < self.n && self.dead[from] {
            return Ok(None);
        }
        if from < self.n && self.crashed[from] {
            return match self.net.recv_deadline(to, from, self.policy.recv_wait) {
                Ok(m) => Ok(Some(m)),
                Err(TransportError::Timeout { .. }) => {
                    self.frame_timeouts += 1;
                    Ok(None)
                }
                Err(e) => Err(e.into()),
            };
        }
        match self.net.recv(to, from) {
            Ok(m) => Ok(Some(m)),
            Err(e) => Err(e.into()),
        }
    }

    /// Apply the injector's frame-boundary rank faults: fail-stop crashes
    /// take effect at the start of their frame; one-shot stalls charge
    /// their virtual seconds before the rank does anything else.
    fn begin_frame(&mut self, frame: u64) {
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            if !self.recovered[c] && self.net.crash_frame(c).is_some_and(|k| frame >= k) {
                self.crashed[c] = true;
                self.rec.fault(frame, c, FaultKind::Crash);
                continue;
            }
            let stall = self.net.stall_seconds(c, frame);
            if stall > 0.0 {
                self.net.advance(c, stall);
                self.rec.fault(frame, c, FaultKind::Stall);
            }
        }
    }

    /// The manager gives up on calculator `c`: confiscate its particles
    /// (lost with the rank), purge its in-flight queues, and collapse its
    /// slice toward the nearest alive neighbor so the partition invariant
    /// holds and the next `Domains` broadcast reassigns the space.
    fn declare_dead(&mut self, c: usize, frame: u64) -> Result<(), ProtocolError> {
        self.crashed[c] = true;
        self.dead[c] = true;
        self.missed[c] = 0;
        self.dead_events.push((c, frame));
        self.rec.fault(frame, c, FaultKind::DeclaredDead);
        if (0..self.n).all(|r| self.dead[r]) {
            return Err(ProtocolError::Domain {
                role: "manager",
                rank: self.mgr,
                frame,
                detail: "every calculator is dead; no neighbor can absorb the load".into(),
            });
        }
        let n_sys = self.scene.systems.len();
        for sys in 0..n_sys {
            let gone = self.calcs[c].stores[sys].take_all();
            self.lost += gone.len() as u64;
        }
        // Purge in-flight traffic both ways. Particle payloads queued
        // toward the rank were already counted lost at send time; anything
        // it sent pre-crash was consumed by the lock-step schedule.
        for r in 0..self.net.ranks() {
            if r != c {
                let _ = self.net.take_queued(c, r);
                let _ = self.net.take_queued(r, c);
            }
        }
        // Collapse the dead slice (and any dead run between `c` and the
        // absorbing neighbor) to zero width: the alive rank above inherits
        // the space, or the alive rank below when none exists above.
        // `owner_of` walks past zero-width slices, so routing never again
        // targets `c`.
        let above = (c + 1..self.n).find(|&r| !self.dead[r]);
        let below = (0..c).rev().find(|&r| !self.dead[r]);
        for sys in 0..n_sys {
            let dm = &mut self.mgr_domains[sys];
            let moved = if let Some(a) = above {
                let lo = dm.cuts()[c];
                (c..a).try_for_each(|b| dm.move_cut(b, lo))
            } else if let Some(b0) = below {
                let hi = dm.cuts()[c + 1];
                (b0..c).rev().try_for_each(|b| dm.move_cut(b, hi))
            } else {
                Ok(())
            };
            if let Err(e) = moved {
                return Err(ProtocolError::Domain {
                    role: "manager",
                    rank: self.mgr,
                    frame,
                    detail: format!("collapsing dead rank {c} slice: {e}"),
                });
            }
            if invariants::ENABLED {
                invariants::check_partition(
                    frame,
                    sys,
                    self.space_of(sys),
                    &self.mgr_domains[sys],
                )?;
            }
        }
        Ok(())
    }

    /// Run the configured animation and produce the report; the trace is
    /// handed back alongside so executors can restore it.
    pub fn run(&mut self, cluster_label: String) -> (Result<RunReport, ProtocolError>, Trace) {
        let mut frames = Vec::with_capacity(self.cfg.frames as usize);
        let outcome = self.run_frames(&mut frames);
        let trace = std::mem::take(&mut self.trace);
        let result = outcome.map(|()| self.finish_report(cluster_label, frames));
        (result, trace)
    }

    /// Assemble the [`RunReport`] after every frame has been stepped (the
    /// caller holds the per-frame reports [`Engine::step_frame`] returned).
    /// Warm-up frames are filtered here, exactly as [`Engine::run`] does.
    pub fn finish_report(&mut self, cluster_label: String, frames: Vec<FrameReport>) -> RunReport {
        let phases = std::mem::replace(&mut self.rec, Recorder::disabled()).finish();
        let kept: Vec<FrameReport> =
            frames.into_iter().filter(|f| f.frame >= self.cfg.warmup).collect();
        RunReport {
            label: self.cfg.label(),
            cluster: cluster_label,
            calculators: self.n,
            total_time: self.net.makespan(),
            frames: kept,
            traffic: self.net.stats(),
            dead_ranks: self.dead_events.clone(),
            // Round to the nearest real particle: the truncating cast this
            // replaces dropped up to one particle per run at fractional
            // scale factors, making zero-loss gates flaky.
            lost_particles: scale_count(self.lost, self.scale),
            phases,
            recoveries: self.recoveries.clone(),
        }
    }

    /// Frames still to run before the animation completes.
    pub fn frames_remaining(&self) -> u64 {
        self.cfg.frames - self.next_frame
    }

    /// Recoveries performed so far (also carried on the finished report).
    pub fn recoveries(&self) -> &[RecoveryEvent] {
        &self.recoveries
    }

    /// Capture a complete frame-boundary snapshot: per-system store
    /// contents, every domain map (the manager's authoritative copy and
    /// each calculator's replica — they diverge under static balancing with
    /// dead ranks), the degraded-mode sets, the frame cursor, and the
    /// fabric's wire/injector state. Frame-local tallies (`frame_retries`
    /// and friends) are provably zero at a frame boundary and per-frame RNG
    /// re-derives from the frame cursor, so neither is captured — see
    /// [`crate::checkpoint`] for the full exclusion argument.
    ///
    /// Callers snapshot between [`Engine::step_frame`] calls (or let
    /// `cfg.checkpoint.interval` do it); a mid-phase snapshot is
    /// meaningless and unreachable from outside.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            next_frame: self.next_frame,
            round: self.round,
            prev_makespan: self.prev_makespan,
            lost: self.lost,
            idle_rounds: self.idle_rounds.clone(),
            crashed: self.crashed.clone(),
            dead: self.dead.clone(),
            missed: self.missed.clone(),
            dead_events: self.dead_events.clone(),
            mgr_cuts: self.mgr_domains.iter().map(|d| d.cuts().to_vec()).collect(),
            calcs: self
                .calcs
                .iter()
                .map(|cs| CalcSnapshot {
                    stores: cs
                        .stores
                        .iter()
                        .map(|st| StoreSnapshot {
                            slice: st.slice(),
                            buckets: st.bucket_count(),
                            particles: st.iter().copied().collect(),
                        })
                        .collect(),
                    cuts: cs.domains.iter().map(|d| d.cuts().to_vec()).collect(),
                    compute_time: cs.compute_time.clone(),
                    pre_count: cs.pre_count.clone(),
                })
                .collect(),
            fabric: self.net.save_fabric(),
        }
    }

    /// Rewind the engine to a previously captured snapshot.
    ///
    /// The engine must have been built from the same scene, config, and
    /// placement the snapshot was taken under (the session layer revives an
    /// evicted engine exactly this way: rebuild, then restore). Stores are
    /// rebuilt by re-inserting the snapshot's particles in captured order —
    /// bucket assignment is a pure function of position and within-bucket
    /// order is append order, so the layout comes back byte-identical.
    /// Queued fabric messages are dropped; replay regenerates them.
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), ProtocolError> {
        let n_sys = self.scene.systems.len();
        let mgr = self.mgr;
        let shape_err = |detail: String| ProtocolError::Domain {
            role: "checkpoint",
            rank: mgr,
            frame: snap.next_frame,
            detail,
        };
        if snap.calcs.len() != self.n
            || snap.crashed.len() != self.n
            || snap.dead.len() != self.n
            || snap.missed.len() != self.n
            || snap.idle_rounds.len() != n_sys
            || snap.mgr_cuts.len() != n_sys
        {
            return Err(shape_err(format!(
                "snapshot shape mismatch: {} calculators / {} systems captured, engine has {} / {}",
                snap.calcs.len(),
                snap.mgr_cuts.len(),
                self.n,
                n_sys,
            )));
        }
        for (c, cs) in snap.calcs.iter().enumerate() {
            if cs.stores.len() != n_sys
                || cs.cuts.len() != n_sys
                || cs.compute_time.len() != n_sys
                || cs.pre_count.len() != n_sys
            {
                return Err(shape_err(format!(
                    "snapshot calculator {c} covers {} systems, engine has {n_sys}",
                    cs.stores.len(),
                )));
            }
        }
        let domain_err = |what: &str, e: psa_core::domain::DomainError| ProtocolError::Domain {
            role: "checkpoint",
            rank: mgr,
            frame: snap.next_frame,
            detail: format!("restoring {what}: {e}"),
        };
        let mut mgr_domains = Vec::with_capacity(n_sys);
        for (sys, cuts) in snap.mgr_cuts.iter().enumerate() {
            mgr_domains.push(
                DomainMap::from_cuts(AXIS, cuts.clone())
                    .map_err(|e| domain_err(&format!("manager domains for system {sys}"), e))?,
            );
        }
        let mut calc_domains = Vec::with_capacity(self.n);
        for (c, cs) in snap.calcs.iter().enumerate() {
            let mut per_sys = Vec::with_capacity(n_sys);
            for (sys, cuts) in cs.cuts.iter().enumerate() {
                per_sys.push(Arc::new(DomainMap::from_cuts(AXIS, cuts.clone()).map_err(|e| {
                    domain_err(&format!("calculator {c} domains for system {sys}"), e)
                })?));
            }
            calc_domains.push(per_sys);
        }
        // All inputs validated — mutate.
        self.mgr_domains = mgr_domains;
        for ((calc, cs), domains) in self.calcs.iter_mut().zip(&snap.calcs).zip(calc_domains) {
            for (store, ss) in calc.stores.iter_mut().zip(&cs.stores) {
                let mut rebuilt = SubDomainStore::new(ss.slice, AXIS, ss.buckets.max(1));
                for p in &ss.particles {
                    rebuilt.insert(*p);
                }
                *store = rebuilt;
            }
            calc.domains = domains;
            calc.compute_time.clone_from(&cs.compute_time);
            calc.pre_count.clone_from(&cs.pre_count);
        }
        self.next_frame = snap.next_frame;
        self.round = snap.round;
        self.prev_makespan = snap.prev_makespan;
        self.lost = snap.lost;
        self.idle_rounds.clone_from(&snap.idle_rounds);
        self.crashed.clone_from(&snap.crashed);
        self.dead.clone_from(&snap.dead);
        self.missed.clone_from(&snap.missed);
        self.dead_events.clone_from(&snap.dead_events);
        self.net.load_fabric(&snap.fabric);
        // Frame-local tallies are zero at every frame boundary; scratch is
        // drained by construction.
        self.frame_timeouts = 0;
        self.frame_retries = 0;
        self.frame_orders = 0;
        self.frame_chunks = 0;
        self.frame_skips = 0;
        self.newborn_scratch.clear();
        self.leavers_scratch.clear();
        self.touched_scratch.clear();
        for b in &mut self.create_batches {
            b.clear();
        }
        for b in &mut self.exchange_dests {
            b.clear();
        }
        if self.rec.is_enabled() {
            self.frame_stats_mark = self.net.stats();
        }
        Ok(())
    }

    /// Whole-engine rollback-replay recovery (`cfg.checkpoint.recover`):
    /// restore the last snapshot — which resurrects every rank that crashed
    /// after it — and deterministically re-run the frames up to `frame`
    /// with the trace and recorder suppressed, then re-apply the current
    /// frame's boundary faults. Replay regenerates byte-identical state
    /// *and* virtual time (the clocks rewind and recharge), so the finished
    /// run fingerprints exactly like an uninterrupted one; what recovery
    /// actually cost is reported separately as [`RecoveryEvent`]s.
    fn recover_crashed(&mut self, frame: u64) -> Result<(), ProtocolError> {
        let Some(snap) = self.last_snapshot.clone() else {
            return Ok(());
        };
        // Ranks that crashed after the snapshot can be resurrected; a rank
        // already crashed *in* the snapshot cannot (its state predates every
        // surviving checkpoint) and stays degraded. Both sets are marked
        // recovered so the planned crash — a permanent plan entry — never
        // re-trips and recovery never re-runs for them.
        let victims: Vec<usize> = (0..self.n)
            .filter(|&c| self.crashed[c] && !self.dead[c] && !self.recovered[c] && !snap.crashed[c])
            .collect();
        for c in 0..self.n {
            if self.crashed[c] && !self.dead[c] {
                self.recovered[c] = true;
            }
        }
        if victims.is_empty() {
            return Ok(());
        }
        let particles_restored: Vec<u64> = victims
            .iter()
            .map(|&c| snap.calcs[c].stores.iter().map(|s| s.particles.len() as u64).sum())
            .collect();
        self.restore(&snap)?;
        let mk0 = self.net.makespan();
        // Replay quietly: the trace and recorder must describe the run
        // once, not the rolled-back window twice.
        let saved_trace = std::mem::take(&mut self.trace);
        let saved_rec = std::mem::replace(&mut self.rec, Recorder::disabled());
        let mut replayed = 0u64;
        let mut replay_result = Ok(());
        while self.next_frame < frame {
            match self.step_frame() {
                Ok(_) => replayed += 1,
                Err(e) => {
                    replay_result = Err(e);
                    break;
                }
            }
        }
        self.trace = saved_trace;
        self.rec = saved_rec;
        replay_result?;
        // Re-apply the current frame's boundary faults the rollback wiped
        // (stalls on healthy ranks; the victims now skip their crash via
        // the recovered flag). Quiet: the pre-rollback begin_frame already
        // recorded these fault events once.
        let saved_rec = std::mem::replace(&mut self.rec, Recorder::disabled());
        self.begin_frame(frame);
        self.rec = saved_rec;
        let replay_virtual_secs = self.net.makespan() - mk0;
        self.rec.add(frame, Counter::Restores, 1);
        if self.rec.is_enabled() {
            self.frame_stats_mark = self.net.stats();
        }
        for (&rank, &restored) in victims.iter().zip(&particles_restored) {
            self.recoveries.push(RecoveryEvent {
                rank,
                frame,
                snapshot_frame: snap.next_frame,
                frames_replayed: replayed,
                particles_restored: restored,
                replay_virtual_secs,
            });
        }
        Ok(())
    }

    fn run_frames(&mut self, frames: &mut Vec<FrameReport>) -> Result<(), ProtocolError> {
        while let Some(fr) = self.step_frame()? {
            frames.push(fr);
        }
        Ok(())
    }

    /// Run the next frame of the animation and return its report, or
    /// `Ok(None)` once every configured frame has run.
    ///
    /// This is the cooperative-scheduling entry point: the session layer
    /// interleaves many engines by stepping each a frame (or a slice of
    /// frames) at a time. A full run is exactly `step_frame` until `None`
    /// ([`Engine::run`] is implemented that way), so a stepped engine's
    /// state — and therefore its report fingerprint — is byte-identical to
    /// a solo run's no matter how steps interleave with other engines.
    pub fn step_frame(&mut self) -> Result<Option<FrameReport>, ProtocolError> {
        if self.next_frame >= self.cfg.frames {
            return Ok(None);
        }
        let interval = self.cfg.checkpoint.interval;
        if interval > 0 && self.next_frame > 0 && self.next_frame.is_multiple_of(interval) {
            self.rec.add(self.next_frame, Counter::Snapshots, 1);
            self.last_snapshot = Some(self.snapshot());
        }
        let frame = self.next_frame;
        let n_sys = self.scene.systems.len();
        {
            if self.rec.is_enabled() {
                self.frame_stats_mark = self.net.stats();
            }
            self.begin_frame(frame);
            if self.cfg.checkpoint.recover
                && self.last_snapshot.is_some()
                && (0..self.n).any(|c| self.crashed[c] && !self.dead[c] && !self.recovered[c])
            {
                self.recover_crashed(frame)?;
            }
            let mut fr = FrameReport { frame, ..Default::default() };

            match self.cfg.schedule {
                SystemSchedule::PerSystem => {
                    for sys in 0..n_sys {
                        self.record_phase(frame, Phase::Compute, |e| {
                            e.phase_creation(frame, sys)?;
                            e.phase_addition(frame, sys)?;
                            e.phase_calculus(frame, sys);
                            e.phase_collision(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Exchange, |e| {
                            e.phase_exchange(frame, sys, &mut fr)
                        })?;
                        let loads = self.record_phase(frame, Phase::LoadReport, |e| {
                            e.phase_loads(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Balance, |e| {
                            e.phase_balance(frame, sys, &loads, &mut fr)
                        })?;
                        self.record_phase(frame, Phase::Ship, |e| {
                            e.phase_ship(frame, sys, &mut fr)
                        })?;
                    }
                }
                SystemSchedule::Batched => {
                    self.record_phase(frame, Phase::Compute, |e| {
                        for sys in 0..n_sys {
                            e.phase_creation(frame, sys)?;
                            e.phase_addition(frame, sys)?;
                        }
                        for sys in 0..n_sys {
                            e.phase_calculus(frame, sys);
                            e.phase_collision(frame, sys)?;
                        }
                        Ok::<(), ProtocolError>(())
                    })?;
                    self.record_phase(frame, Phase::Exchange, |e| {
                        (0..n_sys).try_for_each(|sys| e.phase_exchange(frame, sys, &mut fr))
                    })?;
                    for sys in 0..n_sys {
                        let loads = self.record_phase(frame, Phase::LoadReport, |e| {
                            e.phase_loads(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Balance, |e| {
                            e.phase_balance(frame, sys, &loads, &mut fr)
                        })?;
                    }
                    self.record_phase(frame, Phase::Ship, |e| {
                        (0..n_sys).try_for_each(|sys| e.phase_ship(frame, sys, &mut fr))
                    })?;
                }
            }

            self.record_phase(frame, Phase::Render, |e| {
                // Fixed per-frame image cost (clear, encode, write).
                e.net.advance(e.ig, e.cost.per_frame_render_fixed / e.fe_speed);
                e.trace.record(frame, ProtocolEvent::ImageGeneration);

                // Parallel-phases frame boundary for the surviving compute
                // processes.
                let active = e.active_set();
                e.net.barrier(&active);
            });

            // Per-frame accounting (survivors only).
            let counts: Vec<f64> = (0..self.n)
                .filter(|&c| !self.crashed[c])
                .map(|c| self.calcs[c].stores.iter().map(|s| s.len() as f64).sum::<f64>())
                .collect();
            fr.imbalance = imbalance(&counts);
            let mk = self.net.makespan();
            fr.frame_time = mk - self.prev_makespan;
            self.prev_makespan = mk;
            fr.timeouts = self.frame_timeouts;
            self.frame_timeouts = 0;
            self.flush_frame_counters(frame, &fr);
            self.next_frame += 1;
            Ok(Some(fr))
        }
    }

    /// Creation at the manager (paper §3.2.1): emit, route by domain, ship
    /// batches with end-of-transmission markers.
    fn phase_creation(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        let spec = self.scene.systems[sys].spec.clone();
        let mut rng_c = stream(self.cfg.seed, TAG_CREATE, frame, sys, 0);
        let mut newborn = std::mem::take(&mut self.newborn_scratch);
        newborn.clear();
        if frame == 0 {
            newborn = spec.emit_initial(&mut rng_c);
        }
        newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng_c)));
        self.net.advance(self.mgr, self.cost.create_time(newborn.len(), self.fe_speed));
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleCreation);
        }
        for p in newborn.drain(..) {
            self.create_batches[self.mgr_domains[sys].owner_of(p.position.along(AXIS))].push(p);
        }
        self.newborn_scratch = newborn;
        for c in 0..self.n {
            // The message owns its batch (it crosses the fabric); only the
            // staging spine and its capacity are reused.
            let batch: Vec<Particle> = self.create_batches[c].drain(..).collect();
            self.send_to(
                self.mgr,
                c,
                Msg::Particles { system: spec.id, batch, scale: self.scale },
            )?;
            self.send_to(self.mgr, c, Msg::EndOfTransmission { system: spec.id })?;
        }
        Ok(())
    }

    /// Calculators receive and store the newborn batches.
    fn phase_addition(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let batch = expect_virt!(self, c, self.mgr, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            expect_virt!(self, c, self.mgr, frame,
                Msg::EndOfTransmission { .. } => (), "EndOfTransmission");
            self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
            self.calcs[c].stores[sys].extend(batch);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::AdditionToLocalSet);
        }
        Ok(())
    }

    /// The action list ("Calculus" in Figure 2). A rank's injected
    /// slowdown inflates both the charged time and the load it will
    /// report, so dynamic balancing shifts work away from slow nodes.
    fn phase_calculus(&mut self, frame: u64, sys: usize) {
        let setup = self.scene.systems[sys].clone();
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let rng_a = stream(self.cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let pre = self.calcs[c].stores[sys].len();
            // The chunked kernel (legacy serial stream when chunk == 0).
            // Virtual time stays worker-count-invariant: the charged cost
            // depends only on the weighted work, so the same seed yields the
            // same fingerprint at every worker count.
            let kr = kernel::run_actions(
                &setup.actions,
                self.cfg.dt,
                frame,
                rng_a,
                &mut self.calcs[c].stores[sys],
                self.cfg.parallel.chunk,
                self.cfg.parallel.workers,
            );
            self.frame_chunks += kr.chunks;
            let factor = self.net.compute_factor(c);
            let t = self.cost.weighted_work_time(kr.weighted, self.speeds[c]) * factor;
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] = t;
            self.calcs[c].pre_count[sys] = pre.max(1);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::Calculus);
        }
    }

    /// Optional inter-particle collision with ghost-slab exchange
    /// (§3.1.4 / the "exchanged during the computation" mode of §3.1.5).
    /// Ghosts are read-only copies, so a slab lost to a crashed neighbor
    /// degrades collision quality at the boundary without losing particles.
    fn phase_collision(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        let Some(col) = self.scene.collision else {
            return Ok(());
        };
        use psa_core::collide::{colliding_pairs, resolve_elastic_with_ghosts};
        let spec_id = self.scene.systems[sys].spec.id;
        let n = self.n;
        let slabs: Vec<Option<(Vec<Particle>, Vec<Particle>)>> = (0..n)
            .map(|c| {
                if self.crashed[c] {
                    None
                } else {
                    Some(self.calcs[c].stores[sys].boundary_slabs(col.cell))
                }
            })
            .collect();
        for (c, slab) in slabs.into_iter().enumerate() {
            let Some((low, high)) = slab else {
                continue;
            };
            if c > 0 {
                self.send_to(
                    c,
                    c - 1,
                    Msg::Ghosts { system: spec_id, batch: low, scale: self.scale },
                )?;
            }
            if c + 1 < n {
                self.send_to(
                    c,
                    c + 1,
                    Msg::Ghosts { system: spec_id, batch: high, scale: self.scale },
                )?;
            }
        }
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            let mut ghosts: Vec<Particle> = Vec::new();
            for d in [c.wrapping_sub(1), c + 1] {
                if d >= n || d == c {
                    continue;
                }
                match self.recv_from(c, d)? {
                    Some(Msg::Ghosts { batch, .. }) => ghosts.extend(batch),
                    Some(other) => {
                        return Err(ProtocolError::UnexpectedMessage {
                            role: "calculator",
                            rank: c,
                            frame,
                            expected: "Ghosts",
                            got: other.kind(),
                        })
                    }
                    None => {} // crashed/dead neighbor: no slab this frame
                }
            }
            let mut locals = self.calcs[c].stores[sys].take_all();
            let pairs = colliding_pairs(&locals, &ghosts, col.cell);
            resolve_elastic_with_ghosts(&mut locals, &ghosts, &pairs, col.restitution);
            let factor = self.net.compute_factor(c);
            let t = self.cost.collision_time(locals.len() + ghosts.len(), self.speeds[c]) * factor;
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] += t;
            self.calcs[c].stores[sys].extend(locals);
        }
        Ok(())
    }

    /// The one exchange-phase send site (dense and sparse both route here,
    /// so the Figure-2 event order has a single definition).
    fn ship_exchange(
        &mut self,
        from: usize,
        to: usize,
        system: SystemId,
        batch: Vec<Particle>,
    ) -> Result<(), ProtocolError> {
        self.send_to(from, to, Msg::Particles { system, batch, scale: self.scale })
    }

    /// The one exchange-phase receive site (see [`Self::ship_exchange`]).
    fn recv_exchange(
        &mut self,
        c: usize,
        d: usize,
        frame: u64,
        sys: usize,
        incoming: &mut [usize],
    ) -> Result<(), ProtocolError> {
        match self.recv_from(c, d)? {
            Some(Msg::Particles { batch, .. }) => {
                incoming[c] += batch.len();
                self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
                self.calcs[c].stores[sys].extend(batch);
            }
            Some(other) => {
                return Err(ProtocolError::UnexpectedMessage {
                    role: "calculator",
                    rank: c,
                    frame,
                    expected: "Particles",
                    got: other.kind(),
                })
            }
            None => {} // crashed peer sent nothing; wait was charged
        }
        Ok(())
    }

    /// End-of-frame particle exchange: leavers ship directly to their new
    /// owner (all domains are globally known). Dense mode sends one message
    /// per ordered pair — Figure 2 verbatim, bit-identical to the historical
    /// executor; sparse mode ships only non-empty batches and receives from
    /// exactly the queued senders. Under `strict-invariants` the phase
    /// checks per-rank and global conservation, with the global check
    /// crediting particles lost toward crashed/dead destinations.
    fn phase_exchange(
        &mut self,
        frame: u64,
        sys: usize,
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let sparse = self.sparse;
        let lost_at_start = self.lost;
        let mut before = vec![0usize; n];
        let mut outgoing = vec![0usize; n];
        let mut incoming = vec![0usize; n];
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            let len = self.calcs[c].stores[sys].len();
            before[c] = len;
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            self.calcs[c].stores[sys].collect_leavers_into(&mut self.leavers_scratch);
            {
                let dm = &self.calcs[c].domains[sys];
                for p in self.leavers_scratch.drain(..) {
                    let owner = dm.owner_of(p.position.along(AXIS));
                    if owner != c && self.exchange_dests[owner].is_empty() {
                        self.touched_scratch.push(owner);
                    }
                    self.exchange_dests[owner].push(p);
                }
            }
            self.calcs[c].stores[sys].extend(self.exchange_dests[c].drain(..));
            let total_sent: usize = self.exchange_dests.iter().map(Vec::len).sum();
            outgoing[c] = total_sent;
            self.net.advance(c, self.cost.pack_time(total_sent, self.speeds[c]));
            // "particles that belong to another calculator" (§5.1):
            // only actually-shipped particles count as migration.
            fr.migrated += (total_sent as f64 * self.scale) as u64;
            fr.migration_bytes += self.cost.wire_bytes(total_sent, WIRE_BYTES);
            if sparse {
                let mut touched = std::mem::take(&mut self.touched_scratch);
                touched.sort_unstable();
                for &d in &touched {
                    let batch: Vec<Particle> = self.exchange_dests[d].drain(..).collect();
                    self.ship_exchange(c, d, spec_id, batch)?;
                }
                touched.clear();
                self.touched_scratch = touched;
            } else {
                self.touched_scratch.clear();
                for d in 0..n {
                    if d != c {
                        let batch: Vec<Particle> = self.exchange_dests[d].drain(..).collect();
                        self.ship_exchange(c, d, spec_id, batch)?;
                    }
                }
            }
        }
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            if sparse {
                // Only the ranks with queued traffic — O(migrants), and
                // ascending rank order keeps the schedule deterministic.
                let senders = self.net.queued_senders(c);
                for d in senders {
                    if d < n && d != c {
                        self.recv_exchange(c, d, frame, sys, &mut incoming)?;
                    }
                }
            } else {
                for d in 0..n {
                    if d == c || self.dead[d] {
                        continue;
                    }
                    self.recv_exchange(c, d, frame, sys, &mut incoming)?;
                }
            }
        }
        if invariants::ENABLED {
            let mut before_sum = 0usize;
            let mut after_sum = 0usize;
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                let after = self.calcs[c].stores[sys].len();
                invariants::check_exchange_conservation(
                    frame,
                    sys,
                    c,
                    before[c],
                    outgoing[c],
                    incoming[c],
                    after,
                )?;
                // A NaN position evades every slice (owner_of cannot place
                // it) while conservation still balances — reject it here.
                invariants::check_finite_positions(
                    frame,
                    sys,
                    c,
                    self.calcs[c].stores[sys].iter(),
                )?;
                before_sum += before[c];
                after_sum += after;
            }
            invariants::check_global_conservation_with_losses(
                frame,
                sys,
                before_sum,
                after_sum,
                (self.lost - lost_at_start) as usize,
            )?;
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleExchange);
        }
        Ok(())
    }

    /// Load reports (paper §3.2.4), with the time rescaled to the
    /// post-exchange population. Under the centralized modes the manager
    /// gathers them; under the decentralized mode each calculator also
    /// shares its report with its domain neighbors. A calculator that
    /// misses [`FaultPolicy::dead_after`] consecutive gathers is declared
    /// dead. `None` entries mark ranks the manager has no report from.
    fn phase_loads(
        &mut self,
        frame: u64,
        sys: usize,
    ) -> Result<Vec<Option<LoadInfo>>, ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let decentralized = self.cfg.balance.is_decentralized();
        // Gossip partners for the decentralized modes: the nearest
        // non-dead rank on each side (a dead rank's slice is collapsed, so
        // the next surviving rank really is the domain neighbor).
        let left_of = |e: &Self, c: usize| (0..c).rev().find(|&d| !e.dead[d]);
        let right_of = |e: &Self, c: usize| (c + 1..n).find(|&d| !e.dead[d]);
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            let count = self.calcs[c].stores[sys].len();
            let time = self.calcs[c].compute_time[sys] * count as f64
                / self.calcs[c].pre_count[sys] as f64;
            let info = LoadInfo { count, time };
            self.send_to(c, self.mgr, Msg::Load { system: spec_id, info, migrated: 0 })?;
            if decentralized && !self.dead[c] {
                for d in [left_of(self, c), right_of(self, c)].into_iter().flatten() {
                    self.send_to(c, d, Msg::Load { system: spec_id, info, migrated: 0 })?;
                }
            }
        }
        let mut loads: Vec<Option<LoadInfo>> = vec![None; n];
        for c in 0..n {
            if self.dead[c] {
                continue;
            }
            match self.recv_from(self.mgr, c)? {
                Some(Msg::Load { info, .. }) => {
                    loads[c] = Some(info);
                    self.missed[c] = 0;
                }
                Some(other) => {
                    return Err(ProtocolError::UnexpectedMessage {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        expected: "Load",
                        got: other.kind(),
                    })
                }
                None => {
                    self.missed[c] += 1;
                    if self.missed[c] >= self.policy.dead_after {
                        self.declare_dead(c, frame)?;
                    }
                }
            }
        }
        if decentralized {
            // Each calculator consumes its neighbors' reports (the content
            // equals `loads`; the receive charges the communication). The
            // partner walk mirrors the send side exactly, so no report is
            // left queued on a link.
            for c in 0..n {
                if self.crashed[c] || self.dead[c] {
                    continue;
                }
                for d in [left_of(self, c), right_of(self, c)].into_iter().flatten() {
                    match self.recv_from(c, d)? {
                        Some(Msg::Load { .. }) | None => {}
                        Some(other) => {
                            return Err(ProtocolError::UnexpectedMessage {
                                role: "calculator",
                                rank: c,
                                frame,
                                expected: "Load",
                                got: other.kind(),
                            })
                        }
                    }
                }
            }
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::LoadInformation);
        }
        Ok(loads)
    }

    /// The balancing phase: one strategy round behind the
    /// [`balance::Balancer`] trait — centralized strategies (neighbor-pair,
    /// hierarchical/SFC) order via the manager, decentralized ones
    /// (half-excess, diffusive) decide pair-locally from the reports
    /// gossiped in [`Engine::phase_loads`] — or the plain synchronization
    /// step static balancing needs. Degraded-mode domain reassignment rides
    /// the centralized modes' every-round `Domains` broadcast; the static
    /// mode has no broadcast, so a dead slice stays collapsed but survivors
    /// keep stale replicas (their misdirected sends are counted as lost).
    ///
    /// Every strategy decides over the *present* set (the ranks whose
    /// reports arrived), in present-index space, with transfers mapped back
    /// to real ranks — the `evaluate_present` contract, checked per round
    /// by [`balance::validate_round`].
    ///
    /// A dead balancer also stops charging for the phase: after
    /// `idle_after` consecutive zero-order rounds the phase short-circuits
    /// to the barrier static balancing pays (re-probing every
    /// `reprobe_period` frames), so a configuration whose every candidate
    /// move is suppressed — the BENCH_5 dead zone — recovers toward the SLB
    /// makespan instead of paying the full order/broadcast round-trip for
    /// nothing. The skip decision is a pure function of decided-transfer
    /// history, so every executor skips the same rounds and same-seed
    /// fingerprints stay aligned.
    fn phase_balance(
        &mut self,
        frame: u64,
        sys: usize,
        loads: &[Option<LoadInfo>],
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        let strategy = match balancers::strategy_for(&self.cfg.balance) {
            Some(s) => s,
            None => {
                // Without balancing the model still requires a
                // synchronization step (paper §3.2) so a fast calculator
                // cannot race a frame ahead.
                let active = self.active_set();
                self.net.barrier(&active);
                return Ok(());
            }
        };
        let bcfg = *self.cfg.balance.balancer_config().expect("dynamic mode carries a config");
        if balance::should_skip_round(self.idle_rounds[sys], frame, &bcfg) {
            self.frame_skips += 1;
            let active = self.active_set();
            self.net.barrier(&active);
            return Ok(());
        }
        let present: Vec<usize> = (0..self.n).filter(|&c| loads[c].is_some()).collect();
        let pl: Vec<LoadInfo> = present.iter().filter_map(|&c| loads[c]).collect();
        let powers: Vec<f64> = present.iter().map(|&c| self.speeds[c]).collect();
        let transfers = if present.len() >= 2 {
            strategy.decide(&pl, &powers, &present, self.round, &bcfg)
        } else {
            Vec::new()
        };
        self.round += 1;
        self.idle_rounds[sys] =
            if transfers.is_empty() { self.idle_rounds[sys].saturating_add(1) } else { 0 };
        debug_assert!(
            balance::validate_round(&transfers, &pl, &present, strategy.multi_pair()).is_ok(),
            "{} produced an invalid round: {:?}",
            strategy.name(),
            balance::validate_round(&transfers, &pl, &present, strategy.multi_pair())
        );
        // The centralized branch comes first in token order: the Figure-2
        // conformance pass inlines `execute_transfers` at its first call
        // site, and the protocol order is Orders before NewCut/Domains.
        if !strategy.decentralized() {
            self.net.advance(
                self.mgr,
                self.cost.balance_eval_time(present.len().saturating_sub(1), self.fe_speed),
            );
            if sys == 0 {
                self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
            }
            let spec_id = self.scene.systems[sys].spec.id;
            let round_orders = transfers.len() as u32;
            for &c in &present {
                self.send_to(
                    self.mgr,
                    c,
                    Msg::Orders {
                        system: spec_id,
                        orders: balance::orders_for(&transfers, c),
                        round_orders,
                    },
                )?;
            }
            for &c in &present {
                expect_virt!(self, c, self.mgr, frame, Msg::Orders { .. } => (), "Orders");
            }
            if sys == 0 {
                self.trace.record(frame, ProtocolEvent::LoadBalancingOrders);
            }
            self.execute_transfers(frame, sys, &transfers, fr, true)?;
        } else {
            // Every pair decides from the reports exchanged in phase_loads;
            // the computation is replicated and identical on both
            // endpoints, so no orders are needed. Pairs with a silent
            // endpoint skip their round.
            for c in 0..self.n {
                if self.crashed[c] {
                    continue;
                }
                self.net.advance(c, self.cost.balance_eval_time(2, self.speeds[c]));
            }
            if sys == 0 {
                self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
            }
            self.execute_transfers(frame, sys, &transfers, fr, false)?;
        }
        Ok(())
    }

    /// Execute a decided transfer set: donors select particles and compute
    /// new cuts, the domain update is disseminated (via the manager when
    /// `via_manager`, else donor-broadcast), every calculator redefines its
    /// local domains, then the particles move. With dead ranks between a
    /// donor/receiver pair, the manager moves every boundary in the gap
    /// (the collapsed zero-width slices ride along with the cut).
    fn execute_transfers(
        &mut self,
        frame: u64,
        sys: usize,
        transfers: &[Transfer],
        fr: &mut FrameReport,
        via_manager: bool,
    ) -> Result<(), ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        self.frame_orders += transfers.len() as u64;

        // Donors prepare structures and compute new cuts. Decentralized
        // rounds may have one calculator donating on both sides; processing
        // transfers in boundary order keeps the donations sequential and
        // the kept-extent bookkeeping exact.
        let mut ordered: Vec<Transfer> = transfers.to_vec();
        ordered.sort_by_key(|t| t.donor.min(t.receiver));
        let mut donations: Vec<(usize, usize, Vec<Particle>)> = Vec::new();
        let mut cuts: Vec<(usize, usize, Scalar)> = Vec::new(); // (donor, receiver, cut)
        for t in &ordered {
            let donor = t.donor;
            let receiver = t.receiver;
            let amount = t.amount.min(self.calcs[donor].stores[sys].len());
            let store = &mut self.calcs[donor].stores[sys];
            let old_slice = store.slice();
            let (mut donated, sorted) =
                if receiver < donor { store.donate_low(amount) } else { store.donate_high(amount) };
            self.net.advance(
                donor,
                self.cost.sort_time(sorted, self.speeds[donor])
                    + self.cost.pack_time(donated.len(), self.speeds[donor]),
            );
            let kept = self.calcs[donor].stores[sys].extent();
            let cut = donation_cut(receiver < donor, &donated, kept, old_slice);
            // Half-open tie guard: a donated particle exactly at the cut
            // still belongs to the donor.
            if receiver < donor {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) >= cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) < cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            } else {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) < cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) >= cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            }
            cuts.push((donor, receiver, cut));
            donations.push((donor, receiver, donated));
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::PreparationOfStructures);
        }

        if via_manager {
            // Donors report cuts to the manager, which updates the
            // authoritative map and rebroadcasts (paper §3.2.5).
            for &(donor, receiver, cut) in &cuts {
                self.send_to(
                    donor,
                    self.mgr,
                    Msg::NewCut { system: spec_id, boundary: donor.min(receiver), cut },
                )?;
            }
            for &(donor, receiver, _) in &cuts {
                let cut = expect_virt!(self, self.mgr, donor, frame,
                    Msg::NewCut { cut, .. } => cut, "NewCut");
                apply_cut_span(&mut self.mgr_domains[sys], donor, receiver, cut).map_err(|e| {
                    ProtocolError::Domain {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        detail: format!("applying cut from donor {donor}: {e}"),
                    }
                })?;
            }
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                self.send_to(
                    self.mgr,
                    c,
                    Msg::Domains { system: spec_id, cuts: self.mgr_domains[sys].cuts().to_vec() },
                )?;
            }
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            // One shared map for every calculator: the per-rank parse keeps
            // the broadcast's validation (and its typed error), the Arc
            // keeps 1,024 ranks from holding 1,024 copies.
            let shared = Arc::new(self.mgr_domains[sys].clone());
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                let new_cuts = expect_virt!(self, c, self.mgr, frame,
                    Msg::Domains { cuts, .. } => cuts, "Domains");
                let parsed =
                    DomainMap::from_cuts(AXIS, new_cuts).map_err(|e| ProtocolError::Domain {
                        role: "calculator",
                        rank: c,
                        frame,
                        detail: format!("broadcast domains invalid: {e}"),
                    })?;
                debug_assert_eq!(
                    parsed.cuts(),
                    shared.cuts(),
                    "broadcast domains diverged from manager state"
                );
                drop(parsed);
                self.apply_domains(c, sys, shared.clone());
            }
        } else {
            // Decentralized: each donor broadcasts its cut to every
            // running process (manager included — it still routes
            // creation), and every process applies the cuts in order.
            for &(donor, receiver, cut) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor && !(c < n && self.crashed[c]) {
                        self.send_to(
                            donor,
                            c,
                            Msg::NewCut { system: spec_id, boundary: donor.min(receiver), cut },
                        )?;
                    }
                }
            }
            let applied: Vec<(usize, Scalar)> =
                cuts.iter().map(|&(d, r, cut)| (d.min(r), cut)).collect();
            for &(donor, _, _) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor && !(c < n && self.crashed[c]) {
                        expect_virt!(self, c, donor, frame,
                            Msg::NewCut { .. } => (), "NewCut");
                    }
                }
            }
            for &(boundary, cut) in &applied {
                self.mgr_domains[sys].move_cut(boundary, cut).map_err(|e| {
                    ProtocolError::Domain {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        detail: format!("decentralized cut at boundary {boundary}: {e}"),
                    }
                })?;
            }
            let dm = Arc::new(self.mgr_domains[sys].clone());
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                self.apply_domains(c, sys, dm.clone());
            }
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::DefinitionOfLocalDomains);
        }

        // The donations themselves.
        for (donor, receiver, donated) in donations {
            fr.balanced += (donated.len() as f64 * self.scale) as u64;
            self.send_to(
                donor,
                receiver,
                Msg::Particles { system: spec_id, batch: donated, scale: self.scale },
            )?;
        }
        for t in &ordered {
            let batch = expect_virt!(self, t.receiver, t.donor, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            self.net.advance(t.receiver, self.cost.pack_time(batch.len(), self.speeds[t.receiver]));
            self.calcs[t.receiver].stores[sys].extend(batch);
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::LoadBalanceBetweenCalculators);
        }
        Ok(())
    }

    /// Install an updated domain map at calculator `c`, reshaping its store
    /// if its own slice changed.
    fn apply_domains(&mut self, c: usize, sys: usize, dm: Arc<DomainMap>) {
        let new_slice = dm.slice(c);
        self.calcs[c].domains[sys] = dm;
        if self.calcs[c].stores[sys].slice() != new_slice {
            let len = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            let stray = self.calcs[c].stores[sys].reshape(new_slice);
            // Out-of-space particles pool at the edge calculators
            // (owner_of clamps); they stay here until a kill action removes
            // them. In-space strays would mean a broken cut.
            debug_assert!(
                {
                    let space = self.calcs[c].domains[sys].space();
                    stray.iter().all(|p| {
                        let v = p.position.along(AXIS);
                        v < space.lo || v >= space.hi
                    })
                },
                "in-space stray after reshape: rank {c} slice {new_slice} strays {:?}",
                stray.iter().map(|p| p.position.x).collect::<Vec<_>>(),
            );
            self.calcs[c].stores[sys].extend(stray);
        }
    }

    /// Ship render payloads to the image generator. The image generator
    /// tolerates silent (crashed) calculators — every post-crash frame is
    /// still rendered from the survivors' batches.
    fn phase_ship(
        &mut self,
        frame: u64,
        sys: usize,
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        let spec_id = self.scene.systems[sys].spec.id;
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let count = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.pack_time(count, self.speeds[c]));
            self.send_to(
                c,
                self.ig,
                Msg::RenderBatch { system: spec_id, count, scale: self.scale },
            )?;
        }
        let mut frame_particles = 0usize;
        for c in 0..self.n {
            match self.recv_from(self.ig, c)? {
                Some(Msg::RenderBatch { count, .. }) => frame_particles += count,
                Some(other) => {
                    return Err(ProtocolError::UnexpectedMessage {
                        role: "image generator",
                        rank: self.ig,
                        frame,
                        expected: "RenderBatch",
                        got: other.kind(),
                    })
                }
                None => {} // crashed/dead calculator: render without it
            }
        }
        self.net.advance(
            self.ig,
            self.cost.virt(frame_particles) * self.cost.per_render / self.fe_speed,
        );
        fr.alive += (frame_particles as f64 * self.scale) as u64;
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticlesToImageGenerator);
        }
        Ok(())
    }
}

/// Move every boundary between `donor` and `receiver` to `cut`. Adjacent
/// pairs reduce to the single §3.2.5 `move_cut`; when declared-dead ranks
/// sit between the pair, their collapsed zero-width slices ride along with
/// the cut (every boundary strictly between an alive pair coincides at the
/// shared edge, which makes the sweep range-safe in both directions).
fn apply_cut_span(
    dm: &mut DomainMap,
    donor: usize,
    receiver: usize,
    cut: Scalar,
) -> Result<(), psa_core::domain::DomainError> {
    if donor < receiver {
        (donor..receiver).try_for_each(|b| dm.move_cut(b, cut))
    } else {
        (receiver..donor).rev().try_for_each(|b| dm.move_cut(b, cut))
    }
}

/// Compute the new domain cut after a donation (shared by every executor
/// that rebalances).
///
/// `low_side` is true when donating toward the *left* (lower) neighbor.
/// `kept` is the donor's remaining extent along the axis. The cut is placed
/// midway between the donated extreme and the kept extreme, falling back to
/// the old slice edge when one side is empty.
pub fn donation_cut(
    low_side: bool,
    donated: &[Particle],
    kept: Option<(Scalar, Scalar)>,
    old_slice: Interval,
) -> Scalar {
    let axis = AXIS;
    if donated.is_empty() {
        return if low_side { old_slice.lo } else { old_slice.hi };
    }
    let cut = if low_side {
        // Donor keeps [cut, hi): kept_min >= cut always holds for any cut
        // <= kept_min, and donated particles at exactly `cut` are returned
        // to the donor by the caller's tie guard.
        let donated_max =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::NEG_INFINITY, Scalar::max);
        match kept {
            Some((kept_min, _)) => 0.5 * (donated_max + kept_min),
            None => old_slice.hi,
        }
    } else {
        // Donor keeps [lo, cut): the cut must be STRICTLY above kept_max or
        // kept particles fall outside the half-open slice. When the
        // midpoint collapses onto kept_max (tied positions — e.g. a whole
        // emission cohort from a point source), fall back to the smallest
        // donated coordinate strictly above kept_max; if none exists the
        // donation degenerates and the boundary stays put (the caller's tie
        // guard returns every donated particle to the donor).
        let donated_min =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::INFINITY, Scalar::min);
        match kept {
            Some((_, kept_max)) => {
                let mid = 0.5 * (kept_max + donated_min);
                if mid > kept_max {
                    mid
                } else {
                    let next = donated
                        .iter()
                        .map(|p| p.position.along(axis))
                        .filter(|v| *v > kept_max)
                        .fold(Scalar::INFINITY, Scalar::min);
                    if next.is_finite() {
                        next
                    } else {
                        old_slice.hi
                    }
                }
            }
            None => old_slice.lo,
        }
    };
    // Stray particles can sit *outside* the donor's slice (finite-space
    // workloads let positions overshoot the space edge between exchanges),
    // and a thin donation can then place the midpoint beyond the domain
    // boundary's legal range — `move_cut` would reject the round. The new
    // boundary always lies within the donor's old slice (donation only
    // shrinks the donor), so clamping there is exact, and a no-op for
    // infinite spaces.
    cut.clamp(old_slice.lo, old_slice.hi)
}

// ---------------------------------------------------------------------------
// SPMD role bodies (the threaded executor spawns these on real threads).
// ---------------------------------------------------------------------------

pub(crate) fn space_for(scene: &Scene, cfg: &RunConfig, sys: usize) -> Interval {
    match cfg.space {
        SpaceMode::Finite => scene.systems[sys].spec.space,
        SpaceMode::Infinite => Interval::INFINITE,
    }
}

/// Bounded protocol receive: a silent peer surfaces as a typed
/// [`ProtocolError::Timeout`] carrying role/rank/frame context instead of
/// blocking the executor forever on a lost thread.
pub(crate) fn recv_within(
    ep: &ThreadEndpoint<Msg>,
    from: usize,
    deadline: Duration,
    role: &'static str,
    rank: usize,
    frame: u64,
) -> Result<Msg, ProtocolError> {
    match ep.recv_deadline(from, deadline) {
        Ok(m) => Ok(m),
        Err(TransportError::Timeout { .. }) => {
            Err(ProtocolError::Timeout { role, rank, frame, peer: from })
        }
        Err(e) => Err(e.into()),
    }
}

/// Expect a specific message kind within the deadline; anything else is a
/// protocol violation.
macro_rules! expect_msg {
    ($ep:expr, $deadline:expr, $from:expr, $role:expr, $rank:expr, $frame:expr, $pat:pat => $out:expr, $want:expr) => {
        match recv_within(&$ep, $from, $deadline, $role, $rank, $frame)? {
            $pat => $out,
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    role: $role,
                    rank: $rank,
                    frame: $frame,
                    expected: $want,
                    got: other.kind(),
                })
            }
        }
    };
}

/// Charge the wall-clock interval since `*last` to `phase` and reset the
/// mark. The single timing primitive all three roles share: it only reads
/// the endpoint's epoch clock, so instrumentation cannot perturb protocol
/// state. A disabled recorder skips even the clock read.
fn mark(
    rec: &mut Recorder,
    last: &mut f64,
    ep: &ThreadEndpoint<Msg>,
    frame: u64,
    rank: usize,
    phase: Phase,
) {
    if !rec.is_enabled() {
        return;
    }
    let now = ep.now();
    rec.phase(frame, rank, phase, (now - *last).max(0.0));
    *last = now;
}

/// Flush the endpoint's sent-traffic delta since `mark` into the frame's
/// message/byte counters; returns the new mark.
fn flush_traffic(
    rec: &mut Recorder,
    ep: &ThreadEndpoint<Msg>,
    frame: u64,
    prev: TrafficStats,
) -> TrafficStats {
    if !rec.is_enabled() {
        return prev;
    }
    let now = ep.sent_stats();
    rec.add(frame, Counter::Messages, now.messages - prev.messages);
    rec.add(frame, Counter::PayloadBytes, now.payload_bytes - prev.payload_bytes);
    now
}

pub(crate) fn calculator_main(
    ep: ThreadEndpoint<Msg>,
    c: usize,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
    instrument: bool,
) -> Result<Recorder, ProtocolError> {
    let mgr = n;
    let ig = n + 1;
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut stores: Vec<SubDomainStore> = (0..n_sys)
        .map(|s| SubDomainStore::new(domains[s].slice(c), Axis::X, cfg.buckets))
        .collect();
    let mut trace = if invariants::ENABLED { Trace::enabled() } else { Trace::disabled() };
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut last = ep.now();
    let mut traffic_mark = ep.sent_stats();
    // Hot-path scratch, reused every frame: no steady-state allocation in
    // the exchange staging.
    let mut leavers: Vec<Particle> = Vec::new();
    let mut per_dest: Vec<Vec<Particle>> = (0..n).map(|_| Vec::new()).collect();
    // Zero-order streak per system, kept in lock-step with the manager via
    // the `round_orders` total each Orders message carries.
    let mut idle_rounds = vec![0u32; n_sys];

    for frame in 0..cfg.frames {
        for sys in 0..n_sys {
            let setup = &scene.systems[sys];
            // Creation: receive batch + EOT.
            let batch = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                Msg::EndOfTransmission { .. } => (), "EndOfTransmission");
            stores[sys].extend(batch);
            trace.record(frame, ProtocolEvent::AdditionToLocalSet);

            // Calculus, through the chunked kernel (legacy serial stream
            // when cfg.parallel.chunk == 0).
            let t0 = ep.now();
            let rng = stream(cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let pre = stores[sys].len().max(1);
            let kr = kernel::run_actions(
                &setup.actions,
                cfg.dt,
                frame,
                rng,
                &mut stores[sys],
                cfg.parallel.chunk,
                cfg.parallel.workers,
            );
            let compute = ep.now() - t0;
            trace.record(frame, ProtocolEvent::Calculus);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Compute);
            rec.add(frame, Counter::ComputeChunks, kr.chunks);

            // Exchange. `leavers`/`per_dest` are frame-loop scratch; only
            // the cross-thread sends allocate (the message owns its batch).
            let before_exchange = stores[sys].len();
            stores[sys].collect_leavers_into(&mut leavers);
            let migrated = leavers.len();
            for p in leavers.drain(..) {
                let owner = domains[sys].owner_of(p.position.x);
                per_dest[owner].push(p);
            }
            stores[sys].extend(per_dest[c].drain(..));
            let mut outgoing = 0usize;
            for (d, dest) in per_dest.iter_mut().enumerate() {
                if d != c {
                    outgoing += dest.len();
                    // Not `mem::take`: the message must own an exact-sized
                    // batch anyway, and draining keeps the staging spine's
                    // warmed capacity for the next frame.
                    #[allow(clippy::drain_collect)]
                    let batch: Vec<Particle> = dest.drain(..).collect();
                    ep.send(d, Msg::Particles { system: setup.spec.id, batch, scale: 1.0 })?;
                }
            }
            let mut incoming = 0usize;
            for d in 0..n {
                if d == c {
                    continue;
                }
                let batch = expect_msg!(ep, deadline, d, "calculator", c, frame,
                    Msg::Particles { batch, .. } => batch, "Particles");
                incoming += batch.len();
                stores[sys].extend(batch);
            }
            trace.record(frame, ProtocolEvent::ParticleExchange);
            if invariants::ENABLED {
                invariants::check_exchange_conservation(
                    frame,
                    sys,
                    c,
                    before_exchange,
                    outgoing,
                    incoming,
                    stores[sys].len(),
                )?;
                // Conservation balances even when a NaN position has put a
                // particle beyond every slice; reject the corruption itself.
                invariants::check_finite_positions(frame, sys, c, stores[sys].iter())?;
            }
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Exchange);

            // Load report (time rescaled to post-exchange count, §3.2.4).
            let count = stores[sys].len();
            let time = match cfg.load_metric {
                LoadMetric::WallClock => compute * count as f64 / pre as f64,
                LoadMetric::CountProportional => count as f64,
            };
            ep.send(
                mgr,
                Msg::Load { system: setup.spec.id, info: LoadInfo { count, time }, migrated },
            )?;
            trace.record(frame, ProtocolEvent::LoadInformation);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::LoadReport);

            // Balancing. The skip test replicates the manager's: both sides
            // track the zero-order streak (ours from `round_orders`), so a
            // short-circuited round has no Orders message to wait for.
            if cfg.balance.is_dynamic()
                && !cfg
                    .balance
                    .balancer_config()
                    .is_some_and(|b| balance::should_skip_round(idle_rounds[sys], frame, b))
            {
                let (orders, round_orders) = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                    Msg::Orders { orders, round_orders, .. } => (orders, round_orders), "Orders");
                idle_rounds[sys] =
                    if round_orders == 0 { idle_rounds[sys].saturating_add(1) } else { 0 };
                // Multi-pair strategies may have one donor serving both
                // sides; donations stage in order and move only after the
                // new domains are in force.
                let mut outgoing: Vec<(usize, Vec<Particle>)> = Vec::new();
                for o in &orders {
                    match *o {
                        balance::Order::Send { to, amount } => {
                            let old_slice = stores[sys].slice();
                            let (mut donated, _sorted) = if to < c {
                                stores[sys].donate_low(amount)
                            } else {
                                stores[sys].donate_high(amount)
                            };
                            let kept = stores[sys].extent();
                            let cut = donation_cut(to < c, &donated, kept, old_slice);
                            // half-open tie guard
                            if to < c {
                                let back: Vec<Particle> = donated
                                    .iter()
                                    .filter(|p| p.position.x >= cut)
                                    .copied()
                                    .collect();
                                donated.retain(|p| p.position.x < cut);
                                stores[sys].extend(back);
                            } else {
                                let back: Vec<Particle> = donated
                                    .iter()
                                    .filter(|p| p.position.x < cut)
                                    .copied()
                                    .collect();
                                donated.retain(|p| p.position.x >= cut);
                                stores[sys].extend(back);
                            }
                            ep.send(
                                mgr,
                                Msg::NewCut { system: setup.spec.id, boundary: c.min(to), cut },
                            )?;
                            outgoing.push((to, donated));
                        }
                        balance::Order::Receive { .. } => {}
                    }
                }
                if !orders.is_empty() {
                    trace.record(frame, ProtocolEvent::PreparationOfStructures);
                }
                // Everyone receives the rebroadcast domains.
                let cuts = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                    Msg::Domains { cuts, .. } => cuts, "Domains");
                let dm =
                    DomainMap::from_cuts(Axis::X, cuts).map_err(|e| ProtocolError::Domain {
                        role: "calculator",
                        rank: c,
                        frame,
                        detail: format!("{e:?}"),
                    })?;
                if invariants::ENABLED {
                    invariants::check_partition(frame, sys, space_for(scene, cfg, sys), &dm)?;
                }
                let new_slice = dm.slice(c);
                domains[sys] = dm;
                trace.record(frame, ProtocolEvent::DefinitionOfLocalDomains);
                if stores[sys].slice() != new_slice {
                    let stray = stores[sys].reshape(new_slice);
                    stores[sys].extend(stray);
                }
                // Donations move only after the new domains are in force.
                let mut transferred = false;
                for (to, donated) in outgoing {
                    transferred = true;
                    ep.send(
                        to,
                        Msg::Particles { system: setup.spec.id, batch: donated, scale: 1.0 },
                    )?;
                }
                for o in &orders {
                    if let balance::Order::Receive { from } = *o {
                        transferred = true;
                        let batch = expect_msg!(ep, deadline, from, "calculator", c, frame,
                            Msg::Particles { batch, .. } => batch, "Particles");
                        stores[sys].extend(batch);
                    }
                }
                if transferred {
                    trace.record(frame, ProtocolEvent::LoadBalanceBetweenCalculators);
                }
            }
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Balance);

            // Ship the frame to the image generator.
            let batch: Vec<Particle> = stores[sys].iter().copied().collect();
            ep.send(ig, Msg::RenderParticles { system: setup.spec.id, batch })?;
            trace.record(frame, ProtocolEvent::ParticlesToImageGenerator);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Ship);
        }
        if invariants::ENABLED {
            let events = trace.frame(frame);
            if figure2_passes(&events) != n_sys {
                return Err(ProtocolError::OrderBroken {
                    role: "calculator",
                    rank: c,
                    frame,
                    detail: format!("{events:?}"),
                });
            }
        }
        traffic_mark = flush_traffic(&mut rec, &ep, frame, traffic_mark);
    }
    Ok(rec)
}

pub(crate) fn manager_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
    instrument: bool,
) -> Result<(Vec<FrameReport>, Recorder), ProtocolError> {
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut round = 0u64;
    let mut idle_rounds = vec![0u32; n_sys];
    let mut frames = Vec::with_capacity(cfg.frames as usize);
    let mut last = ep.now();
    let mut trace = if invariants::ENABLED { Trace::enabled() } else { Trace::disabled() };
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut phase_mark = ep.now();
    let mut traffic_mark = ep.sent_stats();
    // Frame-loop scratch: creation staging reuses these across frames.
    let mut newborn: Vec<Particle> = Vec::new();
    let mut batches: Vec<Vec<Particle>> = (0..n).map(|_| Vec::new()).collect();

    for frame in 0..cfg.frames {
        let mut fr = FrameReport { frame, ..Default::default() };
        let mut orders_issued = 0u64;
        let mut skips_issued = 0u64;
        for sys in 0..n_sys {
            let spec = &scene.systems[sys].spec;
            // Creation.
            let mut rng = stream(cfg.seed, TAG_CREATE, frame, sys, 0);
            newborn.clear();
            if frame == 0 {
                newborn = spec.emit_initial(&mut rng);
            }
            newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng)));
            for p in newborn.drain(..) {
                batches[domains[sys].owner_of(p.position.x)].push(p);
            }
            for (c, staged) in batches.iter_mut().enumerate() {
                // Same rationale as the calculator's exchange sends: drain
                // keeps the staging capacity, the message owns its batch.
                #[allow(clippy::drain_collect)]
                let batch: Vec<Particle> = staged.drain(..).collect();
                ep.send(c, Msg::Particles { system: spec.id, batch, scale: 1.0 })?;
                ep.send(c, Msg::EndOfTransmission { system: spec.id })?;
            }
            trace.record(frame, ProtocolEvent::ParticleCreation);
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::Compute);

            // Load reports.
            let mut loads = Vec::with_capacity(n);
            for c in 0..n {
                let (info, migrated) = expect_msg!(ep, deadline, c, "manager", n, frame,
                    Msg::Load { info, migrated, .. } => (info, migrated), "Load");
                fr.migrated += migrated as u64;
                fr.migration_bytes += (migrated * psa_core::WIRE_BYTES) as u64;
                loads.push(info);
            }
            let counts: Vec<f64> = loads.iter().map(|l| l.count as f64).collect();
            fr.imbalance = fr.imbalance.max(imbalance(&counts));
            trace.record(frame, ProtocolEvent::LoadInformation);
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::LoadReport);

            // Balancing. The threaded executor is manager-mediated for
            // every strategy: decentralized strategies reuse the same
            // decision function but their transfers still travel the
            // Orders/NewCut/Domains round-trip (the host threads share a
            // process; the decentralized modes' gossip topology is a
            // virtual-executor concern). The skip decision mirrors the
            // calculators': both sides derive the zero-order streak from
            // the same round history, so nobody blocks on a message the
            // other side never sends.
            if let Some(strategy) = balancers::strategy_for(&cfg.balance) {
                let bcfg = *cfg.balance.balancer_config().expect("dynamic mode carries a config");
                if balance::should_skip_round(idle_rounds[sys], frame, &bcfg) {
                    skips_issued += 1;
                    mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::Balance);
                    continue;
                }
                let speeds = vec![1.0; n]; // host threads are homogeneous
                let present: Vec<usize> = (0..n).collect();
                let mut transfers = if n >= 2 {
                    strategy.decide(&loads, &speeds, &present, round, &bcfg)
                } else {
                    Vec::new()
                };
                round += 1;
                idle_rounds[sys] =
                    if transfers.is_empty() { idle_rounds[sys].saturating_add(1) } else { 0 };
                debug_assert!(
                    balance::validate_round(&transfers, &loads, &present, strategy.multi_pair())
                        .is_ok(),
                    "{} produced an invalid round",
                    strategy.name()
                );
                // Same boundary order as the engine's execute_transfers, so
                // a multi-pair donor's sequential donations line up across
                // executors.
                transfers.sort_by_key(|t| t.donor.min(t.receiver));
                orders_issued += transfers.len() as u64;
                trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                let round_orders = transfers.len() as u32;
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Orders {
                            system: spec.id,
                            orders: balance::orders_for(&transfers, c),
                            round_orders,
                        },
                    )?;
                }
                trace.record(frame, ProtocolEvent::LoadBalancingOrders);
                for t in &transfers {
                    let (boundary, cut) = expect_msg!(ep, deadline, t.donor, "manager", n, frame,
                        Msg::NewCut { boundary, cut, .. } => (boundary, cut), "NewCut");
                    domains[sys].move_cut(boundary, cut).map_err(|e| ProtocolError::Domain {
                        role: "manager",
                        rank: n,
                        frame,
                        detail: format!("{e:?}"),
                    })?;
                    fr.balanced += t.amount as u64;
                }
                if invariants::ENABLED {
                    invariants::check_partition(
                        frame,
                        sys,
                        space_for(scene, cfg, sys),
                        &domains[sys],
                    )?;
                }
                if !transfers.is_empty() {
                    trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
                }
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Domains { system: spec.id, cuts: domains[sys].cuts().to_vec() },
                    )?;
                }
            }
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::Balance);
        }
        if invariants::ENABLED {
            let events = trace.frame(frame);
            if figure2_passes(&events) != n_sys {
                return Err(ProtocolError::OrderBroken {
                    role: "manager",
                    rank: n,
                    frame,
                    detail: format!("{events:?}"),
                });
            }
        }
        let now = ep.now();
        fr.frame_time = now - last;
        last = now;
        if rec.is_enabled() {
            rec.add(frame, Counter::Migrated, fr.migrated);
            rec.add(frame, Counter::MigrationBytes, fr.migration_bytes);
            rec.add(frame, Counter::BalanceOrders, orders_issued);
            rec.add(frame, Counter::BalanceSkips, skips_issued);
            traffic_mark = flush_traffic(&mut rec, &ep, frame, traffic_mark);
        }
        frames.push(fr);
    }
    Ok((frames, rec))
}

pub(crate) fn image_generator_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    sink: Option<RenderSink>,
    instrument: bool,
) -> Result<(Vec<(u64, u64)>, Recorder), ProtocolError> {
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut fb = sink.as_ref().map(|s| {
        let (w, h) = s.camera.viewport();
        Framebuffer::new(w, h)
    });
    let mut per_frame = Vec::with_capacity(cfg.frames as usize);
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut phase_mark = ep.now();

    for frame in 0..cfg.frames {
        let mut alive = 0u64;
        let mut hash = StateHash::new();
        if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
            fb.clear(s.background);
            render_objects(fb, &s.camera, &scene.objects);
        }
        for _sys in 0..n_sys {
            for c in 0..n {
                let batch = expect_msg!(ep, deadline, c, "image generator", n + 1, frame,
                    Msg::RenderParticles { batch, .. } => batch, "RenderParticles");
                alive += batch.len() as u64;
                hash.extend(batch.iter());
                if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
                    match s.streaks {
                        Some((len, steps)) => {
                            render_streaks(fb, &s.camera, &batch, &s.splat, len, steps);
                        }
                        None => {
                            render_particles(fb, &s.camera, &batch, &s.splat);
                        }
                    }
                }
            }
        }
        if let (Some(fb), Some(s)) = (fb.as_ref(), sink.as_ref()) {
            if let Some(dir) = &s.out_dir {
                std::fs::create_dir_all(dir).map_err(|e| ProtocolError::Render {
                    frame,
                    detail: format!("create {}: {e}", dir.display()),
                })?;
                let path = dir.join(frame_filename(&s.prefix, frame));
                write_ppm(fb, &path).map_err(|e| ProtocolError::Render {
                    frame,
                    detail: format!("write {}: {e}", path.display()),
                })?;
            }
        }
        // The whole IG frame — gathering batches, rasterizing, writing —
        // is the Render phase; the image generator takes part in no other.
        mark(&mut rec, &mut phase_mark, &ep, frame, n + 1, Phase::Render);
        per_frame.push((alive, hash.finish()));
    }
    Ok((per_frame, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    #[test]
    fn new_cut_midpoint_low_side() {
        let donated = vec![Particle::at(Vec3::new(1.0, 0.0, 0.0))];
        let cut = donation_cut(true, &donated, Some((3.0, 9.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 2.0);
    }

    #[test]
    fn new_cut_midpoint_high_side() {
        let donated = vec![Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 7.0);
    }

    #[test]
    fn new_cut_empty_donation_keeps_edges() {
        assert_eq!(donation_cut(true, &[], Some((1.0, 2.0)), Interval::new(0.0, 10.0)), 0.0);
        assert_eq!(donation_cut(false, &[], None, Interval::new(0.0, 10.0)), 10.0);
    }

    #[test]
    fn new_cut_high_side_tie_uses_next_distinct_value() {
        // kept_max == donated_min (an emission cohort with identical
        // positions was split): the cut must be strictly above kept_max.
        let donated =
            vec![Particle::at(Vec3::new(6.0, 0.0, 0.0)), Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert!(cut > 6.0, "cut {cut} must exceed kept_max");
        assert_eq!(cut, 8.0, "smallest strictly-greater donated value");
    }

    #[test]
    fn new_cut_high_side_full_tie_degenerates_to_old_boundary() {
        let donated = vec![Particle::at(Vec3::new(6.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 10.0, "no separating cut exists; boundary unchanged");
    }

    #[test]
    fn new_cut_total_donation_takes_whole_slice() {
        let donated = vec![Particle::at(Vec3::new(5.0, 0.0, 0.0))];
        // donating low with nothing kept: slice collapses to its high edge
        assert_eq!(donation_cut(true, &donated, None, Interval::new(0.0, 10.0)), 10.0);
        assert_eq!(donation_cut(false, &donated, None, Interval::new(0.0, 10.0)), 0.0);
    }

    #[test]
    fn cut_span_adjacent_matches_single_move() {
        let mut a = DomainMap::split_even(Interval::new(0.0, 10.0), AXIS, 4);
        let mut b = a.clone();
        apply_cut_span(&mut a, 1, 2, 4.0).unwrap();
        b.move_cut(1, 4.0).unwrap();
        assert_eq!(a.cuts(), b.cuts());
        // And the reverse orientation hits the same boundary.
        let mut c = DomainMap::split_even(Interval::new(0.0, 10.0), AXIS, 4);
        apply_cut_span(&mut c, 2, 1, 4.0).unwrap();
        assert_eq!(a.cuts(), c.cuts());
    }

    #[test]
    fn cut_span_rides_over_collapsed_dead_slices() {
        // Ranks 1 and 2 are dead: their slices sit at zero width on rank
        // 0's high edge (2.5) and rank 3 absorbed their space.
        let mut dm = DomainMap::from_cuts(AXIS, vec![0.0, 2.5, 2.5, 2.5, 7.5, 10.0]).unwrap();
        // Donor 3 donates low toward receiver 0: every boundary in the gap
        // must land on the new cut.
        apply_cut_span(&mut dm, 3, 0, 5.0).unwrap();
        assert_eq!(dm.cuts(), &[0.0, 5.0, 5.0, 5.0, 7.5, 10.0]);
        // And the upward direction from the low side.
        let mut dm2 = DomainMap::from_cuts(AXIS, vec![0.0, 2.5, 2.5, 2.5, 7.5, 10.0]).unwrap();
        apply_cut_span(&mut dm2, 0, 3, 1.0).unwrap();
        assert_eq!(dm2.cuts(), &[0.0, 1.0, 1.0, 1.0, 7.5, 10.0]);
    }
}
