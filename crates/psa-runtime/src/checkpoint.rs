//! Deterministic checkpoint/restore for the protocol engine.
//!
//! A checkpoint freezes everything the [`crate::Engine`] mutates between
//! frame boundaries — per-system [`SubDomainStore`](psa_core::SubDomainStore) contents in
//! bucket-major order, every domain map (the manager's authoritative copy
//! *and* each calculator's replica, which diverge under static balancing
//! with dead ranks), the degraded-mode sets, the frame cursor, and the
//! fabric's wire clocks plus fault-injector stream states. Nothing else is
//! needed:
//!
//! * **No live simulation RNG.** Every stochastic draw re-derives from
//!   `stream(seed, tag, frame, sys, rank)`, so the frame cursor alone pins
//!   creation and action randomness. The only mid-run RNG state is the
//!   fault injector's per-link draw streams, captured as raw SplitMix64
//!   states (`Rng64::new`/`state` are exact inverses).
//! * **No in-flight messages.** Snapshots are frame-boundary artifacts; the
//!   lock-step protocol drains every healthy link by the frame barrier. The
//!   only queues that may be non-empty point at a crashed-but-undeclared
//!   rank, and those messages are dropped on purpose: a declaration would
//!   purge them, a recovery rolls back past their send.
//! * **No frame-local tallies.** `frame_retries`, `frame_orders`, and
//!   friends are flushed to zero at every frame boundary; restore just
//!   re-zeroes them.
//!
//! The byte codec ([`EngineSnapshot::encode`] / [`EngineSnapshot::decode`])
//! is fixed little-endian with floats by bit pattern, so two snapshots of
//! byte-identical engine states serialize byte-identically — the property
//! the chaos recovery gate and the CI replay check compare via
//! [`EngineSnapshot::fingerprint`].

use psa_core::Particle;
use psa_math::{Interval, Scalar, Vec3};

/// Snapshot cadence and recovery policy, carried on
/// [`crate::RunConfig::checkpoint`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Take an engine snapshot every `interval` frames (at the top of
    /// frames `interval`, `2*interval`, …). `0` disables checkpointing.
    pub interval: u64,
    /// When a calculator fail-stops and a snapshot exists, roll the whole
    /// engine back to it and deterministically replay up to the crash frame
    /// with the rank alive — the run finishes with a fingerprint
    /// byte-identical to an uninterrupted one. With `recover` off (or no
    /// snapshot yet) the crash degrades the run exactly as before.
    pub recover: bool,
}

impl CheckpointConfig {
    /// Checkpoint every `interval` frames and recover crashed ranks.
    pub fn recovering(interval: u64) -> Self {
        CheckpointConfig { interval, recover: true }
    }
}

/// Frame-boundary state of a message fabric: the shared wire model plus
/// fabric-specific extras. In-flight messages are *not* captured (see the
/// module docs); loading a checkpoint drops any queued traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricCheckpoint {
    /// Per-rank clocks, NIC occupancy, and traffic counters.
    pub wire: netsim::WireCheckpoint,
    /// Raw SplitMix64 states of the fault injector's draw streams.
    pub injector_streams: Vec<u64>,
    /// Opaque fabric-specific counters (the event-driven fabric stores its
    /// `SimStats` here; the queue-stepped fabric leaves it empty).
    pub extra: Vec<u64>,
}

/// One sub-domain store, particles in bucket-major iteration order.
///
/// Bucket assignment is a pure clamped function of position and
/// within-bucket order is append order, so re-inserting `particles` in
/// sequence into a fresh store over the same slice reproduces the original
/// layout byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreSnapshot {
    /// The store's slice of the decomposition axis.
    pub slice: Interval,
    /// Bucket count the store was built with.
    pub buckets: usize,
    /// Every particle, bucket-major.
    pub particles: Vec<Particle>,
}

/// One calculator's snapshot: stores, domain replicas, load bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct CalcSnapshot {
    /// Per-system stores.
    pub stores: Vec<StoreSnapshot>,
    /// Per-system local domain-map cuts (may lag the manager's under
    /// static balancing with dead ranks — stale replicas are part of the
    /// degraded-mode semantics and must survive a round-trip).
    pub cuts: Vec<Vec<Scalar>>,
    /// Per-system compute time of the last calculus phase.
    pub compute_time: Vec<f64>,
    /// Population the compute time was measured on.
    pub pre_count: Vec<usize>,
}

/// A complete frame-boundary engine snapshot.
///
/// Construction-time configuration (scene, config, cost model, placement
/// speeds) is *not* captured: a snapshot restores onto an engine built from
/// the same inputs, which is how the session layer revives an evicted
/// engine — build fresh, then [`crate::Engine::restore`].
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Next frame the engine will step (the frame cursor all per-frame RNG
    /// re-derives from).
    pub next_frame: u64,
    /// Evaluated balance rounds so far.
    pub round: u64,
    /// Makespan at the end of the previous frame.
    pub prev_makespan: f64,
    /// Real (unscaled) particles lost to crashed/dead ranks.
    pub lost: u64,
    /// Per-system consecutive zero-order balance rounds.
    pub idle_rounds: Vec<u32>,
    /// Fail-stopped ranks.
    pub crashed: Vec<bool>,
    /// Declared-dead ranks.
    pub dead: Vec<bool>,
    /// Consecutive missed load reports per calculator.
    pub missed: Vec<u32>,
    /// `(rank, frame)` death declarations, in order.
    pub dead_events: Vec<(usize, u64)>,
    /// Per-system manager domain cuts.
    pub mgr_cuts: Vec<Vec<Scalar>>,
    /// Per-calculator state.
    pub calcs: Vec<CalcSnapshot>,
    /// The fabric's frame-boundary state.
    pub fabric: FabricCheckpoint,
}

/// One recovery the engine performed: a crashed rank rolled back to the
/// last snapshot and replayed forward. Reported on
/// [`crate::RunReport::recoveries`]; deliberately **outside** the report
/// fingerprint (recovery is run *machinery*, and a recovered run must
/// fingerprint identically to an uninterrupted one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// The rank that crashed and was recovered.
    pub rank: usize,
    /// Frame at which the crash tripped.
    pub frame: u64,
    /// Frame the restoring snapshot was taken at.
    pub snapshot_frame: u64,
    /// Frames deterministically re-executed to catch back up.
    pub frames_replayed: u64,
    /// Particles the snapshot restored onto the recovered rank.
    pub particles_restored: u64,
    /// Virtual seconds of work redone during the replay — the model's
    /// recovery cost, compared against restart-from-zero by BENCH_8.
    pub replay_virtual_secs: f64,
}

/// Typed decode failure of the snapshot byte codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the codec magic/version.
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A length field exceeds the remaining buffer (corrupt or hostile
    /// input; refused before any allocation is sized from it).
    LengthOverflow,
    /// Trailing bytes after a structurally complete snapshot.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a snapshot: bad magic/version"),
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::LengthOverflow => write!(f, "snapshot length field overflows buffer"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec magic: `PSACKPT` + format version byte.
const MAGIC: [u8; 8] = *b"PSACKPT\x01";

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::with_capacity(256) }
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn vec3(&mut self, v: Vec3) {
        self.f32(v.x);
        self.f32(v.y);
        self.f32(v.z);
    }

    fn particle(&mut self, p: &Particle) {
        self.vec3(p.position);
        self.vec3(p.velocity);
        self.vec3(p.orientation);
        self.vec3(p.color);
        self.f32(p.age);
        self.f32(p.size);
        self.f32(p.alpha);
        self.f32(p.mass);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::LengthOverflow)?;
        let s = self.buf.get(self.at..end).ok_or(CodecError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0) != 0)
    }

    /// A length prefix, refused when it cannot possibly fit the remaining
    /// buffer at `min_item_bytes` per element (so a corrupt length can
    /// never size a huge allocation).
    fn len(&mut self, min_item_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| CodecError::LengthOverflow)?;
        let need = n.checked_mul(min_item_bytes.max(1)).ok_or(CodecError::LengthOverflow)?;
        if need > self.buf.len().saturating_sub(self.at) {
            return Err(CodecError::LengthOverflow);
        }
        Ok(n)
    }

    fn vec3(&mut self) -> Result<Vec3, CodecError> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }

    fn particle(&mut self) -> Result<Particle, CodecError> {
        Ok(Particle {
            position: self.vec3()?,
            velocity: self.vec3()?,
            orientation: self.vec3()?,
            color: self.vec3()?,
            age: self.f32()?,
            size: self.f32()?,
            alpha: self.f32()?,
            mass: self.f32()?,
        })
    }
}

fn put_scalar_vec(w: &mut Writer, v: &[Scalar]) {
    w.u64(v.len() as u64);
    for &s in v {
        w.f32(s);
    }
}

fn get_scalar_vec(r: &mut Reader<'_>) -> Result<Vec<Scalar>, CodecError> {
    let n = r.len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f32()?);
    }
    Ok(out)
}

fn put_u64_vec(w: &mut Writer, v: &[u64]) {
    w.u64(v.len() as u64);
    for &x in v {
        w.u64(x);
    }
}

fn get_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>, CodecError> {
    let n = r.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn put_f64_vec(w: &mut Writer, v: &[f64]) {
    w.u64(v.len() as u64);
    for &x in v {
        w.f64(x);
    }
}

fn get_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>, CodecError> {
    let n = r.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

impl EngineSnapshot {
    /// Serialize to the fixed little-endian byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u64(self.next_frame);
        w.u64(self.round);
        w.f64(self.prev_makespan);
        w.u64(self.lost);
        w.u64(self.idle_rounds.len() as u64);
        for &x in &self.idle_rounds {
            w.u32(x);
        }
        w.u64(self.crashed.len() as u64);
        for &b in &self.crashed {
            w.bool(b);
        }
        w.u64(self.dead.len() as u64);
        for &b in &self.dead {
            w.bool(b);
        }
        w.u64(self.missed.len() as u64);
        for &x in &self.missed {
            w.u32(x);
        }
        w.u64(self.dead_events.len() as u64);
        for &(rank, frame) in &self.dead_events {
            w.u64(rank as u64);
            w.u64(frame);
        }
        w.u64(self.mgr_cuts.len() as u64);
        for cuts in &self.mgr_cuts {
            put_scalar_vec(&mut w, cuts);
        }
        w.u64(self.calcs.len() as u64);
        for c in &self.calcs {
            w.u64(c.stores.len() as u64);
            for s in &c.stores {
                w.f32(s.slice.lo);
                w.f32(s.slice.hi);
                w.u64(s.buckets as u64);
                w.u64(s.particles.len() as u64);
                for p in &s.particles {
                    w.particle(p);
                }
            }
            w.u64(c.cuts.len() as u64);
            for cuts in &c.cuts {
                put_scalar_vec(&mut w, cuts);
            }
            put_f64_vec(&mut w, &c.compute_time);
            w.u64(c.pre_count.len() as u64);
            for &x in &c.pre_count {
                w.u64(x as u64);
            }
        }
        put_f64_vec(&mut w, &self.fabric.wire.clocks);
        put_f64_vec(&mut w, &self.fabric.wire.link_free);
        w.f64(self.fabric.wire.shared_free);
        w.u64(self.fabric.wire.stats.messages);
        w.u64(self.fabric.wire.stats.payload_bytes);
        w.u64(self.fabric.wire.rank_stats.len() as u64);
        for rs in &self.fabric.wire.rank_stats {
            w.u64(rs.messages);
            w.u64(rs.payload_bytes);
        }
        put_u64_vec(&mut w, &self.fabric.injector_streams);
        put_u64_vec(&mut w, &self.fabric.extra);
        w.buf
    }

    /// Decode a buffer produced by [`EngineSnapshot::encode`]. Rejects
    /// malformed input with a typed error; never panics and never sizes an
    /// allocation from an unvalidated length.
    pub fn decode(bytes: &[u8]) -> Result<EngineSnapshot, CodecError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let next_frame = r.u64()?;
        let round = r.u64()?;
        let prev_makespan = r.f64()?;
        let lost = r.u64()?;
        let n = r.len(4)?;
        let mut idle_rounds = Vec::with_capacity(n);
        for _ in 0..n {
            idle_rounds.push(r.u32()?);
        }
        let n = r.len(1)?;
        let mut crashed = Vec::with_capacity(n);
        for _ in 0..n {
            crashed.push(r.bool()?);
        }
        let n = r.len(1)?;
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push(r.bool()?);
        }
        let n = r.len(4)?;
        let mut missed = Vec::with_capacity(n);
        for _ in 0..n {
            missed.push(r.u32()?);
        }
        let n = r.len(16)?;
        let mut dead_events = Vec::with_capacity(n);
        for _ in 0..n {
            let rank = usize::try_from(r.u64()?).map_err(|_| CodecError::LengthOverflow)?;
            dead_events.push((rank, r.u64()?));
        }
        let n = r.len(8)?;
        let mut mgr_cuts = Vec::with_capacity(n);
        for _ in 0..n {
            mgr_cuts.push(get_scalar_vec(&mut r)?);
        }
        let n = r.len(8)?;
        let mut calcs = Vec::with_capacity(n);
        for _ in 0..n {
            let ns = r.len(8)?;
            let mut stores = Vec::with_capacity(ns);
            for _ in 0..ns {
                let lo = r.f32()?;
                let hi = r.f32()?;
                let buckets = usize::try_from(r.u64()?).map_err(|_| CodecError::LengthOverflow)?;
                let np = r.len(64)?;
                let mut particles = Vec::with_capacity(np);
                for _ in 0..np {
                    particles.push(r.particle()?);
                }
                stores.push(StoreSnapshot { slice: Interval::new(lo, hi), buckets, particles });
            }
            let nc = r.len(8)?;
            let mut cuts = Vec::with_capacity(nc);
            for _ in 0..nc {
                cuts.push(get_scalar_vec(&mut r)?);
            }
            let compute_time = get_f64_vec(&mut r)?;
            let np = r.len(8)?;
            let mut pre_count = Vec::with_capacity(np);
            for _ in 0..np {
                pre_count.push(usize::try_from(r.u64()?).map_err(|_| CodecError::LengthOverflow)?);
            }
            calcs.push(CalcSnapshot { stores, cuts, compute_time, pre_count });
        }
        let clocks = get_f64_vec(&mut r)?;
        let link_free = get_f64_vec(&mut r)?;
        let shared_free = r.f64()?;
        let stats = netsim::TrafficStats { messages: r.u64()?, payload_bytes: r.u64()? };
        let n = r.len(16)?;
        let mut rank_stats = Vec::with_capacity(n);
        for _ in 0..n {
            rank_stats.push(netsim::TrafficStats { messages: r.u64()?, payload_bytes: r.u64()? });
        }
        let injector_streams = get_u64_vec(&mut r)?;
        let extra = get_u64_vec(&mut r)?;
        if r.at != bytes.len() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(EngineSnapshot {
            next_frame,
            round,
            prev_makespan,
            lost,
            idle_rounds,
            crashed,
            dead,
            missed,
            dead_events,
            mgr_cuts,
            calcs,
            fabric: FabricCheckpoint {
                wire: netsim::WireCheckpoint { clocks, link_free, shared_free, stats, rank_stats },
                injector_streams,
                extra,
            },
        })
    }

    /// Order-sensitive FNV-1a over the encoded bytes: equal iff the
    /// serialized snapshots are byte-identical. The chaos recovery gate
    /// compares these to pin "byte-identical replay".
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.encode() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    fn sample() -> EngineSnapshot {
        let p = |x: f32| Particle {
            position: Vec3::new(x, 0.5, -1.0),
            velocity: Vec3::new(0.0, -9.8, 0.0),
            orientation: Vec3::new(0.0, 1.0, 0.0),
            color: Vec3::new(1.0, 0.25, 0.0),
            age: 0.5,
            size: 0.1,
            alpha: 0.9,
            mass: 1.0,
        };
        EngineSnapshot {
            next_frame: 4,
            round: 7,
            prev_makespan: 1.25,
            lost: 3,
            idle_rounds: vec![0, 2],
            crashed: vec![false, true, false],
            dead: vec![false, false, false],
            missed: vec![0, 1, 0],
            dead_events: vec![(1, 3)],
            mgr_cuts: vec![vec![0.0, 2.5, 5.0, 10.0], vec![0.0, 3.0, 6.0, 10.0]],
            calcs: vec![CalcSnapshot {
                stores: vec![StoreSnapshot {
                    slice: Interval::new(0.0, 2.5),
                    buckets: 4,
                    particles: vec![p(0.25), p(1.75)],
                }],
                cuts: vec![vec![0.0, 2.5, 5.0, 10.0]],
                compute_time: vec![0.125],
                pre_count: vec![2],
            }],
            fabric: FabricCheckpoint {
                wire: netsim::WireCheckpoint {
                    clocks: vec![1.0, 2.0, -0.0],
                    link_free: vec![0.5; 4],
                    shared_free: 0.75,
                    stats: netsim::TrafficStats { messages: 10, payload_bytes: 640 },
                    rank_stats: vec![netsim::TrafficStats::default(); 3],
                },
                injector_streams: vec![0xDEAD, 0xBEEF],
                extra: vec![42],
            },
        }
    }

    #[test]
    fn codec_round_trips_exactly() {
        let snap = sample();
        let bytes = snap.encode();
        let back = EngineSnapshot::decode(&bytes).expect("well-formed");
        assert_eq!(back, snap);
        // Byte-stability: re-encoding the decoded snapshot is identical.
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.fingerprint(), snap.fingerprint());
    }

    #[test]
    fn negative_zero_clock_survives_by_bit_pattern() {
        let snap = sample();
        let back = EngineSnapshot::decode(&snap.encode()).expect("well-formed");
        let last = back.fabric.wire.clocks.last().copied().expect("three clocks");
        assert!(last == 0.0 && last.is_sign_negative(), "-0.0 must round-trip as -0.0");
    }

    #[test]
    fn bad_magic_is_refused() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert_eq!(EngineSnapshot::decode(&bytes), Err(CodecError::BadMagic));
        assert_eq!(EngineSnapshot::decode(b"short"), Err(CodecError::Truncated));
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error_not_a_panic() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let r = EngineSnapshot::decode(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(EngineSnapshot::decode(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn corrupt_length_cannot_size_an_allocation() {
        let mut bytes = sample().encode();
        // The idle_rounds length field sits right after the 36-byte header
        // (magic 8 + next_frame 8 + round 8 + prev_makespan 8 + lost 8 = 40).
        bytes[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(EngineSnapshot::decode(&bytes), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn fingerprint_moves_with_any_field() {
        let base = sample();
        let mut tweaked = sample();
        tweaked.next_frame += 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let mut tweaked = sample();
        tweaked.fabric.injector_streams[0] ^= 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let mut tweaked = sample();
        tweaked.calcs[0].stores[0].particles[1].position.x += 1.0e-6;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn default_checkpoint_config_is_off() {
        let cfg = CheckpointConfig::default();
        assert_eq!(cfg.interval, 0);
        assert!(!cfg.recover);
        let on = CheckpointConfig::recovering(5);
        assert_eq!(on.interval, 5);
        assert!(on.recover);
    }
}
