//! The pluggable load-balancing strategies behind [`Balancer`].
//!
//! Four strategies ship with the runtime:
//!
//! * [`NeighborPair`] — the paper's §3.2.5 centralized manager walk:
//!   alternating start pair, one pair per process, full excess moved.
//! * [`HalfExcess`] — the paper's §6 "future work" decentralized variant:
//!   every pair acts independently on half its excess.
//! * [`Diffusive`] — first-order damped diffusion (Cybenko-style, cf.
//!   Demiralp et al. 2022): every pair moves `α ×` its excess toward the
//!   power-proportional target each round, no imbalance threshold, no
//!   manager round-trip. The damping `α ≤ 1/2` makes simultaneous
//!   both-neighbor decisions stable on the 1-D chain and bounds a donor's
//!   total outflow by its holdings.
//! * [`HierarchicalSfc`] — hierarchical balancing over the 1-D
//!   space-filling-curve order (cf. Eibl & Rüde's systematic comparison):
//!   ranks form contiguous groups along the domain curve; even rounds
//!   balance *across* groups by moving particles over the shared group
//!   boundary, odd rounds balance *within* each group. Aggregated group
//!   loads keep the decision live at extreme fan-out where any single
//!   rank pair is too thin to act on.
//!
//! All strategies decide in present-index space and map the result back to
//! real ranks, so degraded rounds (dead ranks collapsed out of `present`)
//! work identically for every strategy — the `evaluate_present` contract.

#![deny(missing_docs)]

use crate::balance::{
    evaluate, evaluate_decentralized, map_to_present, pair_move, Balancer, BalancerConfig,
    LoadInfo, Transfer,
};
use crate::config::BalanceMode;

/// The paper's centralized neighbor-pair walk (§3.2.5).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborPair;

impl Balancer for NeighborPair {
    fn name(&self) -> &'static str {
        "neighbor-pair"
    }

    fn decide(
        &self,
        loads: &[LoadInfo],
        powers: &[f64],
        present: &[usize],
        round: u64,
        cfg: &BalancerConfig,
    ) -> Vec<Transfer> {
        if loads.len() != present.len() || powers.len() != present.len() {
            return Vec::new();
        }
        map_to_present(evaluate(loads, powers, (round % 2) as usize, cfg), present)
    }
}

/// The decentralized half-excess balancer (paper §6 future work).
#[derive(Clone, Copy, Debug, Default)]
pub struct HalfExcess;

impl Balancer for HalfExcess {
    fn name(&self) -> &'static str {
        "half-excess"
    }

    fn decentralized(&self) -> bool {
        true
    }

    fn multi_pair(&self) -> bool {
        true
    }

    fn decide(
        &self,
        loads: &[LoadInfo],
        powers: &[f64],
        present: &[usize],
        _round: u64,
        cfg: &BalancerConfig,
    ) -> Vec<Transfer> {
        if loads.len() != present.len() || powers.len() != present.len() {
            return Vec::new();
        }
        map_to_present(evaluate_decentralized(loads, powers, cfg), present)
    }
}

/// First-order damped diffusion: flow proportional to the load gradient.
#[derive(Clone, Copy, Debug, Default)]
pub struct Diffusive;

impl Balancer for Diffusive {
    fn name(&self) -> &'static str {
        "diffusive"
    }

    fn decentralized(&self) -> bool {
        true
    }

    fn multi_pair(&self) -> bool {
        true
    }

    fn decide(
        &self,
        loads: &[LoadInfo],
        powers: &[f64],
        present: &[usize],
        _round: u64,
        cfg: &BalancerConfig,
    ) -> Vec<Transfer> {
        let n = loads.len();
        if n != present.len() || powers.len() != n || n < 2 {
            return Vec::new();
        }
        // α ≤ 1/2 bounds a both-sides donor's outflow by its holdings:
        // each side moves at most α × count, so the sum is ≤ count.
        let alpha = cfg.diffusion_alpha.clamp(0.05, 0.5);
        let total: usize = loads.iter().map(|l| l.count).sum();
        let min_transfer = cfg.effective_min_transfer(total, n).max(1);
        let mut out = Vec::new();
        for a in 0..n - 1 {
            let (donor, receiver, excess) = pair_move(a, a + 1, loads, powers);
            let amount = (excess as f64 * alpha).floor() as usize;
            if amount >= min_transfer {
                out.push(Transfer { donor, receiver, amount });
            }
        }
        map_to_present(out, present)
    }
}

/// Hierarchical balancing over contiguous groups of the 1-D domain curve.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchicalSfc;

impl HierarchicalSfc {
    /// Ranks per group: configured, or ≈√n, always in `[2, n]`.
    fn group_size(n: usize, cfg: &BalancerConfig) -> usize {
        let g =
            if cfg.group_size >= 2 { cfg.group_size } else { (n as f64).sqrt().ceil() as usize };
        g.clamp(2, n.max(2))
    }
}

impl Balancer for HierarchicalSfc {
    fn name(&self) -> &'static str {
        "hierarchical-sfc"
    }

    fn decide(
        &self,
        loads: &[LoadInfo],
        powers: &[f64],
        present: &[usize],
        round: u64,
        cfg: &BalancerConfig,
    ) -> Vec<Transfer> {
        let n = loads.len();
        if n != present.len() || powers.len() != n || n < 2 {
            return Vec::new();
        }
        let g = Self::group_size(n, cfg);
        let ngroups = n.div_ceil(g);
        let level_parity = ((round / 2) % 2) as usize;
        let mut out = Vec::new();
        if ngroups >= 2 && round.is_multiple_of(2) {
            // Across groups: aggregate each group's load and power, run the
            // paper walk over the groups, then realize each group transfer
            // as a move across the shared boundary edge — clamped to what
            // the boundary rank actually holds (the within-group rounds
            // refill the edge so multi-round flows complete).
            let mut gl = vec![LoadInfo::default(); ngroups];
            let mut gp = vec![0.0f64; ngroups];
            for i in 0..n {
                let k = i / g;
                gl[k].count += loads[i].count;
                gl[k].time += loads[i].time;
                gp[k] += powers[i];
            }
            for t in evaluate(&gl, &gp, level_parity, cfg) {
                let (edge_d, edge_r) = if t.donor < t.receiver {
                    (t.receiver * g - 1, t.receiver * g)
                } else {
                    (t.donor * g, t.donor * g - 1)
                };
                let amount = t.amount.min(loads[edge_d].count);
                if amount > 0 {
                    out.push(Transfer { donor: edge_d, receiver: edge_r, amount });
                }
            }
        } else {
            // Within each group: the paper walk on the group's sub-slice,
            // offset back to whole-list indices. Groups are disjoint, so
            // the one-pair-per-process rule holds globally.
            for k in 0..ngroups {
                let (lo, hi) = (k * g, ((k + 1) * g).min(n));
                for t in evaluate(&loads[lo..hi], &powers[lo..hi], level_parity, cfg) {
                    out.push(Transfer {
                        donor: t.donor + lo,
                        receiver: t.receiver + lo,
                        amount: t.amount,
                    });
                }
            }
        }
        map_to_present(out, present)
    }
}

static NEIGHBOR_PAIR: NeighborPair = NeighborPair;
static HALF_EXCESS: HalfExcess = HalfExcess;
static DIFFUSIVE: Diffusive = Diffusive;
static HIERARCHICAL_SFC: HierarchicalSfc = HierarchicalSfc;

/// The strategy a [`BalanceMode`] selects (`None` for static balancing).
pub fn strategy_for(mode: &BalanceMode) -> Option<&'static dyn Balancer> {
    match mode {
        BalanceMode::Static => None,
        BalanceMode::Dynamic(_) => Some(&NEIGHBOR_PAIR),
        BalanceMode::Decentralized(_) => Some(&HALF_EXCESS),
        BalanceMode::Diffusive(_) => Some(&DIFFUSIVE),
        BalanceMode::Hierarchical(_) => Some(&HIERARCHICAL_SFC),
    }
}

/// Every shipped strategy, for trait-generic property suites.
pub fn all_strategies() -> Vec<&'static dyn Balancer> {
    vec![&NEIGHBOR_PAIR, &HALF_EXCESS, &DIFFUSIVE, &HIERARCHICAL_SFC]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::validate_round;

    fn li(count: usize, time: f64) -> LoadInfo {
        LoadInfo { count, time }
    }

    fn spike(n: usize, at: usize, height: usize) -> Vec<LoadInfo> {
        let mut l = vec![li(10, 10e-6); n];
        l[at] = li(height, height as f64 * 1e-6);
        l
    }

    #[test]
    fn neighbor_pair_matches_legacy_evaluate() {
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let present = [0usize, 1, 2, 3];
        let cfg = BalancerConfig::fixed(10);
        for round in 0..4u64 {
            assert_eq!(
                NeighborPair.decide(&loads, &[1.0; 4], &present, round, &cfg),
                evaluate(&loads, &[1.0; 4], (round % 2) as usize, &cfg)
            );
        }
    }

    #[test]
    fn diffusive_moves_a_damped_fraction() {
        let loads = [li(400, 4.0), li(100, 1.0)];
        let cfg = BalancerConfig::fixed(10);
        let t = Diffusive.decide(&loads, &[1.0, 1.0], &[0, 1], 0, &cfg);
        // excess toward the 250/250 target is 150; α = 1/3 → 50.
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 50 }]);
    }

    #[test]
    fn diffusive_never_overdraws_a_both_sides_donor() {
        let loads = [li(0, 0.0), li(99, 1.0), li(0, 0.0)];
        let present = [0usize, 1, 2];
        let cfg = BalancerConfig { diffusion_alpha: 0.5, ..BalancerConfig::fixed(1) };
        let t = Diffusive.decide(&loads, &[1.0; 3], &present, 0, &cfg);
        assert_eq!(t.len(), 2);
        validate_round(&t, &loads, &present, true).unwrap();
    }

    #[test]
    fn hierarchical_moves_load_across_group_boundaries() {
        // 16 ranks, groups of 4. All the load sits in group 0; the even
        // (inter-group) round must move particles across the 3|4 boundary.
        let mut loads = vec![li(0, 0.0); 16];
        for l in loads.iter_mut().take(4) {
            *l = li(1000, 1e-3);
        }
        let present: Vec<usize> = (0..16).collect();
        let cfg = BalancerConfig { group_size: 4, ..BalancerConfig::fixed(10) };
        let t = HierarchicalSfc.decide(&loads, &[1.0; 16], &present, 0, &cfg);
        assert!(!t.is_empty());
        assert!(t.iter().all(|t| t.donor == 3 && t.receiver == 4), "{t:?}");
        validate_round(&t, &loads, &present, false).unwrap();
        // The odd (intra-group) round spreads within groups.
        let t2 = HierarchicalSfc.decide(&loads, &[1.0; 16], &present, 1, &cfg);
        assert!(t2.iter().all(|t| t.donor / 4 == t.receiver / 4), "{t2:?}");
    }

    #[test]
    fn hierarchical_stays_live_on_thin_slices() {
        // The BENCH_5 dead zone: 128 ranks × ~2 particles. Group
        // aggregation keeps the signal above even the paper's fixed 32
        // when the imbalance is group-sized.
        let mut loads = vec![li(1, 1e-6); 128];
        for l in loads.iter_mut().take(12) {
            *l = li(40, 40e-6);
        }
        let present: Vec<usize> = (0..128).collect();
        let t =
            HierarchicalSfc.decide(&loads, &[1.0; 128], &present, 0, &BalancerConfig::default());
        assert!(!t.is_empty(), "group-aggregated signal must stay live");
        validate_round(&t, &loads, &present, false).unwrap();
    }

    #[test]
    fn strategies_map_present_subsets_to_real_ranks() {
        // Rank 1 dead: present = [0, 2, 3]; every strategy's transfers must
        // name real ranks adjacent in present-list space.
        let loads = [li(400, 4.0), li(10, 1e-4), li(10, 1e-4)];
        let present = [0usize, 2, 3];
        for s in all_strategies() {
            let t = s.decide(&loads, &[1.0; 3], &present, 0, &BalancerConfig::fixed(5));
            validate_round(&t, &loads, &present, s.multi_pair())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            for t in &t {
                assert!(t.donor != 1 && t.receiver != 1, "{}: dead rank used: {t:?}", s.name());
            }
        }
    }

    #[test]
    fn every_strategy_drains_a_spike() {
        for s in all_strategies() {
            let n = 32;
            let mut counts: Vec<usize> = spike(n, 7, 10_000).iter().map(|l| l.count).collect();
            let present: Vec<usize> = (0..n).collect();
            let powers = vec![1.0; n];
            let cfg = BalancerConfig::default();
            // Strategies alternate round types (pair parity; the
            // hierarchical inter/intra levels), so convergence means a
            // full cycle of empty rounds, not a single one.
            let mut last_rounds = 0;
            let mut empty_streak = 0;
            for round in 0..4_000u64 {
                let loads: Vec<LoadInfo> = counts.iter().map(|&c| li(c, c as f64 * 1e-6)).collect();
                let ts = s.decide(&loads, &powers, &present, round, &cfg);
                validate_round(&ts, &loads, &present, s.multi_pair())
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
                if ts.is_empty() {
                    empty_streak += 1;
                    if empty_streak >= 4 {
                        last_rounds = round;
                        break;
                    }
                } else {
                    empty_streak = 0;
                }
                for t in ts {
                    counts[t.donor] -= t.amount;
                    counts[t.receiver] += t.amount;
                }
                last_rounds = round + 1;
            }
            assert!(last_rounds < 4_000, "{} did not converge", s.name());
            let max = *counts.iter().max().unwrap() as f64;
            let mean = counts.iter().sum::<usize>() as f64 / n as f64;
            assert!(max / mean < 3.0, "{} left a spike: {counts:?}", s.name());
        }
    }

    #[test]
    fn mode_selects_strategy() {
        assert!(strategy_for(&BalanceMode::Static).is_none());
        assert_eq!(strategy_for(&BalanceMode::dynamic()).unwrap().name(), "neighbor-pair");
        assert_eq!(strategy_for(&BalanceMode::decentralized()).unwrap().name(), "half-excess");
        assert_eq!(strategy_for(&BalanceMode::diffusive()).unwrap().name(), "diffusive");
        assert_eq!(strategy_for(&BalanceMode::hierarchical()).unwrap().name(), "hierarchical-sfc");
    }
}
