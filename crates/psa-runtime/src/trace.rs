//! Protocol event traces.
//!
//! Figure 2 of the paper is a sequence diagram of one frame. The executors
//! record [`ProtocolEvent`]s as they drive the protocol, and an integration
//! test asserts the recorded order matches the figure — the closest thing
//! to "reproducing a figure" a sequence diagram admits.

/// Steps of the Figure-2 frame protocol, in diagram order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// Manager creates the frame's new particles.
    ParticleCreation,
    /// Calculators add received particles to their local sets.
    AdditionToLocalSet,
    /// Calculators run the action list ("Calculus").
    Calculus,
    /// Calculators exchange domain-crossing particles.
    ParticleExchange,
    /// Calculators send load information to the manager.
    LoadInformation,
    /// Manager evaluates the load balancing.
    LoadBalancingEvaluation,
    /// Manager sends balancing orders.
    LoadBalancingOrders,
    /// Calculators prepare structures (sort, select donations).
    PreparationOfStructures,
    /// Donors report new dimensions; manager rebroadcasts domains.
    NewDimensionsAndDomains,
    /// Calculators define their local domains.
    DefinitionOfLocalDomains,
    /// The balancing particle transfers happen.
    LoadBalanceBetweenCalculators,
    /// Calculators ship particles to the image generator.
    ParticlesToImageGenerator,
    /// The image generator produces the frame.
    ImageGeneration,
}

/// The canonical order of one DLB frame, as drawn in Figure 2.
pub const FIGURE2_ORDER: &[ProtocolEvent] = &[
    ProtocolEvent::ParticleCreation,
    ProtocolEvent::AdditionToLocalSet,
    ProtocolEvent::Calculus,
    ProtocolEvent::ParticleExchange,
    ProtocolEvent::LoadInformation,
    ProtocolEvent::LoadBalancingEvaluation,
    ProtocolEvent::LoadBalancingOrders,
    ProtocolEvent::PreparationOfStructures,
    ProtocolEvent::NewDimensionsAndDomains,
    ProtocolEvent::DefinitionOfLocalDomains,
    ProtocolEvent::LoadBalanceBetweenCalculators,
    ProtocolEvent::ParticlesToImageGenerator,
    ProtocolEvent::ImageGeneration,
];

/// A bounded recorder of protocol events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<(u64, ProtocolEvent)>,
    enabled: bool,
}

impl Trace {
    pub fn enabled() -> Self {
        Trace { events: Vec::new(), enabled: true }
    }

    pub fn disabled() -> Self {
        Trace::default()
    }

    #[inline]
    pub fn record(&mut self, frame: u64, e: ProtocolEvent) {
        if self.enabled {
            self.events.push((frame, e));
        }
    }

    /// Events of one frame, in recorded order.
    pub fn frame(&self, frame: u64) -> Vec<ProtocolEvent> {
        self.events.iter().filter(|(f, _)| *f == frame).map(|(_, e)| *e).collect()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Check that `events` is exactly the Figure-2 order (each step once,
/// diagram order).
pub fn matches_figure2(events: &[ProtocolEvent]) -> bool {
    events == FIGURE2_ORDER
}

/// Diagram position of an event in the Figure-2 order.
///
/// [`ProtocolEvent`] is declared in diagram order, so the position is the
/// discriminant — no table lookup, nothing to panic on. The
/// `figure2_order_is_complete_and_unique` test locks the correspondence
/// between the declaration order and [`FIGURE2_ORDER`].
fn figure2_pos(e: ProtocolEvent) -> usize {
    e as usize
}

/// Decompose a frame's recorded events into greedy protocol passes.
///
/// With the per-system schedule, one frame is `n_sys` consecutive passes of
/// the Figure-2 sequence (each pass a strictly-increasing subsequence of
/// diagram positions). Any step recorded out of order — an exchange before
/// its calculus, a domain broadcast before the load reports — breaks a pass
/// in two and inflates the count, so `figure2_passes(events) == n_sys` is
/// the per-frame order invariant the strict executors check.
pub fn figure2_passes(events: &[ProtocolEvent]) -> usize {
    let mut passes = 0usize;
    let mut last: Option<usize> = None;
    for &e in events {
        let p = figure2_pos(e);
        match last {
            Some(l) if p > l => {}
            _ => passes += 1,
        }
        last = Some(p);
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_filters_by_frame() {
        let mut t = Trace::enabled();
        t.record(0, ProtocolEvent::ParticleCreation);
        t.record(1, ProtocolEvent::ParticleCreation);
        t.record(1, ProtocolEvent::Calculus);
        assert_eq!(t.frame(0), vec![ProtocolEvent::ParticleCreation]);
        assert_eq!(t.frame(1).len(), 2);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, ProtocolEvent::Calculus);
        assert!(t.is_empty());
    }

    #[test]
    fn pass_counting_detects_out_of_order_steps() {
        use ProtocolEvent::*;
        // One clean pass.
        assert_eq!(figure2_passes(&[AdditionToLocalSet, Calculus, ParticleExchange]), 1);
        // Two systems, two clean passes.
        assert_eq!(
            figure2_passes(&[
                AdditionToLocalSet,
                Calculus,
                ParticleExchange,
                AdditionToLocalSet,
                Calculus,
                ParticleExchange,
            ]),
            2
        );
        // Exchange before calculus splits the pass.
        assert_eq!(figure2_passes(&[AdditionToLocalSet, ParticleExchange, Calculus]), 2);
        // Duplicate step splits the pass.
        assert_eq!(figure2_passes(&[Calculus, Calculus]), 2);
        assert_eq!(figure2_passes(&[]), 0);
        assert_eq!(figure2_passes(FIGURE2_ORDER), 1);
    }

    #[test]
    fn figure2_order_is_complete_and_unique() {
        // Every protocol step appears exactly once in the canonical order.
        let mut seen = FIGURE2_ORDER.to_vec();
        seen.dedup();
        assert_eq!(seen.len(), FIGURE2_ORDER.len());
        assert!(matches_figure2(FIGURE2_ORDER));
        assert!(!matches_figure2(&FIGURE2_ORDER[1..]));
        // figure2_pos relies on declaration order == diagram order.
        for (i, &e) in FIGURE2_ORDER.iter().enumerate() {
            assert_eq!(figure2_pos(e), i, "{e:?} out of diagram order");
        }
    }
}
