//! The deterministic virtual-time executor.
//!
//! Runs the paper's full frame protocol (Figure 2) over a simulated
//! heterogeneous cluster: real particles move through real data structures,
//! while per-rank virtual clocks and the `netsim` fabric account for what
//! the compute and communication would cost on the modeled hardware. The
//! result is bit-deterministic, so every table in EXPERIMENTS.md
//! regenerates identically from the seed.
//!
//! Rank layout: `0..n` are calculators (one per domain slice, in slice
//! order), `n` is the manager, `n + 1` the image generator. The manager and
//! image generator live on the front-end node (node 0).
//!
//! The frame body is factored into one method per protocol phase so the
//! §3.3 system-combination strategies ([`SystemSchedule`]) can reorder the
//! same phases: `PerSystem` runs each system's full protocol in sequence
//! (Figure 2 verbatim); `Batched` runs each phase across all systems before
//! the next phase starts.
//!
//! ## Fault model
//!
//! The fabric is wrapped in a [`FaultyVirtualNet`] executing a seeded
//! [`FaultPlan`] (see `netsim::fault`): every perturbation — link delay,
//! transient send failure, calculator slowdown, stall, fail-stop crash —
//! is charged as *virtual time*, so a faulty run replays bit-identically
//! from `(seed, plan)`. A quiet plan (the default) draws no entropy and
//! adds `0.0` everywhere, leaving healthy runs byte-identical to the
//! un-instrumented executor.
//!
//! Degraded-mode protocol: transient send failures are retried with
//! exponential backoff in virtual ticks; receives from a crashed rank use a
//! bounded deadline (the wait is charged, the miss counted); the manager
//! declares a calculator dead after [`FaultPolicy::dead_after`] consecutive
//! missed load reports, confiscates its particles (counted as lost),
//! purges its in-flight queues, and collapses its domain slice toward the
//! nearest alive neighbor via the §3.2.5 `move_cut` machinery — the
//! every-round `Domains` broadcast then reassigns the slice so frames keep
//! rendering on the survivors.

use cluster_sim::{ClusterSpec, CostModel, Placement};
use netsim::{
    FaultInjector, FaultPlan, FaultPolicy, FaultyVirtualNet, PlanInjector, TransportError,
    VirtualNet,
};
use psa_core::kernel;
use psa_core::{invariants, DomainMap, Particle, SubDomainStore, WIRE_BYTES};
use psa_math::stats::imbalance;
use psa_math::{Axis, Interval, Rng64, Scalar};
use psa_trace::{ClockKind, Counter, FaultKind, Phase, Recorder};

use crate::balance::{self, LoadInfo, Transfer};
use crate::config::{BalanceMode, RunConfig, SpaceMode, SystemSchedule};
use crate::msg::{Msg, ProtocolError};
use crate::report::{FrameReport, RunReport};
use crate::scene::Scene;
use crate::trace::{ProtocolEvent, Trace};

/// RNG stream tags (see `stream`).
const TAG_CREATE: u64 = 0xC0;
const TAG_ACTIONS: u64 = 0xAC;

/// The decomposition axis (paper: one axis of the plane or space).
const AXIS: Axis = Axis::X;

/// Derive the deterministic stream for (tag, frame, system, rank).
fn stream(seed: u64, tag: u64, frame: u64, sys: usize, rank: usize) -> Rng64 {
    Rng64::new(seed).split(tag).split(frame).split(sys as u64).split(rank as u64)
}

/// Receive a *required* message (the sender is known to be alive): a
/// wrong kind is an `UnexpectedMessage`, silence is a `Timeout`.
macro_rules! expect_virt {
    ($self:ident, $to:expr, $from:expr, $frame:expr, $pat:pat => $out:expr, $expected:expr) => {
        match $self.recv_from($to, $from)? {
            Some($pat) => $out,
            Some(other) => {
                return Err(ProtocolError::UnexpectedMessage {
                    role: "virtual",
                    rank: $to,
                    frame: $frame,
                    expected: $expected,
                    got: other.kind(),
                })
            }
            None => {
                return Err(ProtocolError::Timeout {
                    role: "virtual",
                    rank: $to,
                    frame: $frame,
                    peer: $from,
                })
            }
        }
    };
}

/// Per-calculator state.
struct CalcState {
    /// One sub-domain store per system.
    stores: Vec<SubDomainStore>,
    /// Local replica of every system's domain map (all processes know all
    /// domains, paper §3.1.4).
    domains: Vec<DomainMap>,
    /// This frame's per-system compute time (pre-exchange population).
    compute_time: Vec<f64>,
    /// Population the compute time was measured on.
    pre_count: Vec<usize>,
}

/// The virtual-time executor.
pub struct VirtualSim {
    scene: Scene,
    cfg: RunConfig,
    cluster: ClusterSpec,
    placement: Placement,
    cost: CostModel,
    trace: Trace,
    plan: Option<FaultPlan>,
    policy: FaultPolicy,
    instrument: bool,
}

impl VirtualSim {
    pub fn new(scene: Scene, cfg: RunConfig, cluster: ClusterSpec, cost: CostModel) -> Self {
        assert!(!scene.systems.is_empty(), "scene needs at least one system");
        let placement = cluster.placement();
        VirtualSim {
            scene,
            cfg,
            cluster,
            placement,
            cost,
            trace: Trace::disabled(),
            plan: None,
            policy: FaultPolicy::default(),
            instrument: false,
        }
    }

    /// Record protocol events (used by the Figure-2 test; off by default).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Record the per-phase observability trace (off by default). The
    /// recorder only *reads* virtual clocks, so an instrumented run's
    /// `RunReport::fingerprint()` is byte-identical to a bare run's — the
    /// trace lands in `RunReport::phases`.
    pub fn with_phases(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Inject the given fault plan (must cover `calculators + 2` ranks).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Override the retry/timeout/death policy (defaults are sane).
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run the animation; returns the report (including the virtual
    /// makespan used for speed-up computation), or the protocol error that
    /// ended the run early (e.g. every calculator died).
    pub fn try_run(&mut self) -> Result<RunReport, ProtocolError> {
        let mut engine = Engine::new(
            self.scene.clone(),
            self.cfg.clone(),
            &self.placement,
            self.cluster.net.clone(),
            self.cost.clone(),
            self.plan.clone(),
            self.policy,
            std::mem::take(&mut self.trace),
            self.instrument,
        );
        let (outcome, trace) = engine.run(self.cluster.describe());
        self.trace = trace;
        outcome
    }

    /// Run the animation, panicking on a protocol failure (healthy runs and
    /// survivable fault plans never fail; use [`try_run`](Self::try_run) to
    /// observe fatal plans).
    pub fn run(&mut self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("virtual protocol run failed: {e}"),
        }
    }
}

/// The running frame machinery: every rank's state plus the fabric.
struct Engine {
    scene: Scene,
    cfg: RunConfig,
    cost: CostModel,
    net: FaultyVirtualNet<Msg, PlanInjector>,
    policy: FaultPolicy,
    calcs: Vec<CalcState>,
    mgr_domains: Vec<DomainMap>,
    speeds: Vec<f64>,
    fe_speed: f64,
    scale: f64,
    n: usize,
    mgr: usize,
    ig: usize,
    parity: usize,
    /// Rank `c` has fail-stopped (it no longer computes, sends or
    /// receives); peers may not have noticed yet.
    crashed: Vec<bool>,
    /// The manager has declared rank `c` dead: its slice is collapsed and
    /// nobody addresses it any more.
    dead: Vec<bool>,
    /// Consecutive missed load reports per calculator.
    missed: Vec<u32>,
    /// `(rank, frame)` death declarations, in order.
    dead_events: Vec<(usize, u64)>,
    /// Real (unscaled) particles lost to crashed/dead ranks.
    lost: u64,
    /// Deadline-expired receives in the current frame.
    frame_timeouts: u64,
    trace: Trace,
    /// Per-phase observability recorder (quiet: reads clocks, never moves
    /// them). Disabled unless `VirtualSim::with_phases` was called.
    rec: Recorder,
    /// Aggregate transport counters at the top of the current frame
    /// (recorder bookkeeping only).
    frame_stats_mark: netsim::TrafficStats,
    /// Transient send retries in the current frame.
    frame_retries: u64,
    /// Balancer transfer orders issued in the current frame.
    frame_orders: u64,
    /// Kernel chunks processed in the current frame (0 on the legacy
    /// serial path).
    frame_chunks: u64,
    /// Frame-loop scratch (reused, so the steady-state hot path stages
    /// creation and exchange without allocating).
    newborn_scratch: Vec<Particle>,
    create_batches: Vec<Vec<Particle>>,
    leavers_scratch: Vec<Particle>,
}

impl Engine {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring VirtualSim's fields
    fn new(
        scene: Scene,
        cfg: RunConfig,
        placement: &Placement,
        net_model: cluster_sim::NetworkModel,
        cost: CostModel,
        plan: Option<FaultPlan>,
        policy: FaultPolicy,
        trace: Trace,
        instrument: bool,
    ) -> Self {
        let n = placement.calculators();
        let n_sys = scene.systems.len();
        let mut node_of: Vec<usize> = placement.ranks.iter().map(|r| r.node).collect();
        node_of.push(placement.frontend_node);
        node_of.push(placement.frontend_node);
        let plan = plan.unwrap_or_else(|| FaultPlan::none(cfg.seed, n + 2));
        assert_eq!(
            plan.ranks(),
            n + 2,
            "fault plan must cover calculators + manager + image generator"
        );
        let net = FaultyVirtualNet::new(
            VirtualNet::new(net_model, node_of, placement.node_count),
            PlanInjector::new(plan),
        );
        let space_for = |sys: usize| -> Interval {
            match cfg.space {
                SpaceMode::Finite => scene.systems[sys].spec.space,
                SpaceMode::Infinite => Interval::INFINITE,
            }
        };
        let mgr_domains: Vec<DomainMap> =
            (0..n_sys).map(|s| DomainMap::split_even(space_for(s), AXIS, n)).collect();
        let calcs: Vec<CalcState> = (0..n)
            .map(|c| CalcState {
                stores: (0..n_sys)
                    .map(|s| SubDomainStore::new(mgr_domains[s].slice(c), AXIS, cfg.buckets))
                    .collect(),
                domains: mgr_domains.clone(),
                compute_time: vec![0.0; n_sys],
                pre_count: vec![0; n_sys],
            })
            .collect();
        Engine {
            speeds: placement.ranks.iter().map(|r| r.speed).collect(),
            fe_speed: placement.frontend_speed,
            scale: cost.scale,
            n,
            mgr: n,
            ig: n + 1,
            parity: 0,
            crashed: vec![false; n],
            dead: vec![false; n],
            missed: vec![0; n],
            dead_events: Vec::new(),
            lost: 0,
            frame_timeouts: 0,
            scene,
            cfg,
            cost,
            net,
            policy,
            calcs,
            mgr_domains,
            trace,
            rec: if instrument {
                Recorder::enabled(n + 2, ClockKind::Virtual)
            } else {
                Recorder::disabled()
            },
            frame_stats_mark: netsim::TrafficStats::default(),
            frame_retries: 0,
            frame_orders: 0,
            frame_chunks: 0,
            newborn_scratch: Vec::new(),
            create_batches: (0..n).map(|_| Vec::new()).collect(),
            leavers_scratch: Vec::new(),
        }
    }

    /// Run `f` and charge each rank's virtual-clock delta to `phase`.
    ///
    /// A pure *read* of the fabric: clocks are snapshotted before and after
    /// `f`, never moved. When the recorder is disabled `f` runs with zero
    /// overhead — no snapshots — so bare runs pay nothing.
    fn record_phase<T>(&mut self, frame: u64, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        if !self.rec.is_enabled() {
            return f(self);
        }
        let ranks = self.net.ranks();
        let before: Vec<f64> = (0..ranks).map(|r| self.net.now(r)).collect();
        let out = f(self);
        for (r, &t0) in before.iter().enumerate() {
            let dt = self.net.now(r) - t0;
            if dt > 0.0 {
                self.rec.phase(frame, r, phase, dt);
            }
        }
        out
    }

    /// Flush the frame's event counters into the recorder (no-op when
    /// disabled beyond resetting the frame-local tallies).
    fn flush_frame_counters(&mut self, frame: u64, fr: &FrameReport) {
        let retries = std::mem::take(&mut self.frame_retries);
        let orders = std::mem::take(&mut self.frame_orders);
        let chunks = std::mem::take(&mut self.frame_chunks);
        if !self.rec.is_enabled() {
            return;
        }
        let now = self.net.stats();
        self.rec.add(frame, Counter::Messages, now.messages - self.frame_stats_mark.messages);
        self.rec.add(
            frame,
            Counter::PayloadBytes,
            now.payload_bytes - self.frame_stats_mark.payload_bytes,
        );
        self.rec.add(frame, Counter::Migrated, fr.migrated);
        self.rec.add(frame, Counter::MigrationBytes, fr.migration_bytes);
        self.rec.add(frame, Counter::Timeouts, fr.timeouts);
        self.rec.add(frame, Counter::SendRetries, retries);
        self.rec.add(frame, Counter::BalanceOrders, orders);
        self.rec.add(frame, Counter::ComputeChunks, chunks);
    }

    /// The ranks that still take part in barriers: running calculators plus
    /// the manager (the manager and image generator never crash — they are
    /// the paper's front-end, assumed reliable).
    fn active_set(&self) -> Vec<usize> {
        (0..self.n).filter(|&c| !self.crashed[c]).chain([self.mgr]).collect()
    }

    fn space_of(&self, sys: usize) -> Interval {
        match self.cfg.space {
            SpaceMode::Finite => self.scene.systems[sys].spec.space,
            SpaceMode::Infinite => Interval::INFINITE,
        }
    }

    /// Send with the degraded-mode rules: sends to a declared-dead rank are
    /// dropped (particle payloads counted as lost); sends to a crashed but
    /// undeclared rank are queued as usual (nobody knows yet) with their
    /// particles already counted — the queue is purged uncounted at
    /// declaration. Transient injector failures retry with exponential
    /// backoff charged in virtual ticks.
    fn send_to(&mut self, from: usize, to: usize, msg: Msg) -> Result<(), ProtocolError> {
        if to < self.n && (self.dead[to] || self.crashed[to]) {
            if let Msg::Particles { batch, .. } = &msg {
                self.lost += batch.len() as u64;
            }
            if self.dead[to] {
                return Ok(());
            }
        }
        let mut msg = msg;
        let mut attempt: u32 = 0;
        loop {
            match self.net.send(from, to, msg) {
                Ok(()) => return Ok(()),
                Err(failed) => {
                    attempt += 1;
                    self.frame_retries += 1;
                    if attempt >= self.policy.send_attempts {
                        return Err(failed.error.into());
                    }
                    msg = failed.msg;
                    // Exponential backoff, charged as virtual time.
                    self.net.advance(from, self.policy.backoff * (1u64 << (attempt - 1)) as f64);
                }
            }
        }
    }

    /// Receive with the degraded-mode rules: a declared-dead sender yields
    /// `None` immediately; a crashed-but-undeclared sender is waited on
    /// with a bounded deadline (the wait is charged, a miss is counted and
    /// yields `None`); a healthy sender must have delivered.
    fn recv_from(&mut self, to: usize, from: usize) -> Result<Option<Msg>, ProtocolError> {
        if from < self.n && self.dead[from] {
            return Ok(None);
        }
        if from < self.n && self.crashed[from] {
            return match self.net.recv_deadline(to, from, self.policy.recv_wait) {
                Ok(m) => Ok(Some(m)),
                Err(TransportError::Timeout { .. }) => {
                    self.frame_timeouts += 1;
                    Ok(None)
                }
                Err(e) => Err(e.into()),
            };
        }
        match self.net.recv(to, from) {
            Ok(m) => Ok(Some(m)),
            Err(e) => Err(e.into()),
        }
    }

    /// Apply the injector's frame-boundary rank faults: fail-stop crashes
    /// take effect at the start of their frame; one-shot stalls charge
    /// their virtual seconds before the rank does anything else.
    fn begin_frame(&mut self, frame: u64) {
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            if self.net.injector().crash_frame(c).is_some_and(|k| frame >= k) {
                self.crashed[c] = true;
                self.rec.fault(frame, c, FaultKind::Crash);
                continue;
            }
            let stall = self.net.injector().stall_seconds(c, frame);
            if stall > 0.0 {
                self.net.advance(c, stall);
                self.rec.fault(frame, c, FaultKind::Stall);
            }
        }
    }

    /// The manager gives up on calculator `c`: confiscate its particles
    /// (lost with the rank), purge its in-flight queues, and collapse its
    /// slice toward the nearest alive neighbor so the partition invariant
    /// holds and the next `Domains` broadcast reassigns the space.
    fn declare_dead(&mut self, c: usize, frame: u64) -> Result<(), ProtocolError> {
        self.crashed[c] = true;
        self.dead[c] = true;
        self.missed[c] = 0;
        self.dead_events.push((c, frame));
        self.rec.fault(frame, c, FaultKind::DeclaredDead);
        if (0..self.n).all(|r| self.dead[r]) {
            return Err(ProtocolError::Domain {
                role: "manager",
                rank: self.mgr,
                frame,
                detail: "every calculator is dead; no neighbor can absorb the load".into(),
            });
        }
        let n_sys = self.scene.systems.len();
        for sys in 0..n_sys {
            let gone = self.calcs[c].stores[sys].take_all();
            self.lost += gone.len() as u64;
        }
        // Purge in-flight traffic both ways. Particle payloads queued
        // toward the rank were already counted lost at send time; anything
        // it sent pre-crash was consumed by the lock-step schedule.
        for r in 0..self.net.ranks() {
            if r != c {
                let _ = self.net.take_queued(c, r);
                let _ = self.net.take_queued(r, c);
            }
        }
        // Collapse the dead slice (and any dead run between `c` and the
        // absorbing neighbor) to zero width: the alive rank above inherits
        // the space, or the alive rank below when none exists above.
        // `owner_of` walks past zero-width slices, so routing never again
        // targets `c`.
        let above = (c + 1..self.n).find(|&r| !self.dead[r]);
        let below = (0..c).rev().find(|&r| !self.dead[r]);
        for sys in 0..n_sys {
            let dm = &mut self.mgr_domains[sys];
            let moved = if let Some(a) = above {
                let lo = dm.cuts()[c];
                (c..a).try_for_each(|b| dm.move_cut(b, lo))
            } else if let Some(b0) = below {
                let hi = dm.cuts()[c + 1];
                (b0..c).rev().try_for_each(|b| dm.move_cut(b, hi))
            } else {
                Ok(())
            };
            if let Err(e) = moved {
                return Err(ProtocolError::Domain {
                    role: "manager",
                    rank: self.mgr,
                    frame,
                    detail: format!("collapsing dead rank {c} slice: {e}"),
                });
            }
            if invariants::ENABLED {
                invariants::check_partition(
                    frame,
                    sys,
                    self.space_of(sys),
                    &self.mgr_domains[sys],
                )?;
            }
        }
        Ok(())
    }

    fn run(&mut self, cluster_label: String) -> (Result<RunReport, ProtocolError>, Trace) {
        let mut frames = Vec::with_capacity(self.cfg.frames as usize);
        let outcome = self.run_frames(&mut frames);
        let trace = std::mem::take(&mut self.trace);
        let phases = std::mem::replace(&mut self.rec, Recorder::disabled()).finish();
        let result = outcome.map(|()| {
            let kept: Vec<FrameReport> =
                frames.into_iter().filter(|f| f.frame >= self.cfg.warmup).collect();
            RunReport {
                label: self.cfg.label(),
                cluster: cluster_label,
                calculators: self.n,
                total_time: self.net.makespan(),
                frames: kept,
                traffic: self.net.stats(),
                dead_ranks: self.dead_events.clone(),
                lost_particles: (self.lost as f64 * self.scale) as u64,
                phases,
            }
        });
        (result, trace)
    }

    fn run_frames(&mut self, frames: &mut Vec<FrameReport>) -> Result<(), ProtocolError> {
        let n_sys = self.scene.systems.len();
        let mut prev_makespan = 0.0;

        for frame in 0..self.cfg.frames {
            if self.rec.is_enabled() {
                self.frame_stats_mark = self.net.stats();
            }
            self.begin_frame(frame);
            let mut fr = FrameReport { frame, ..Default::default() };

            match self.cfg.schedule {
                SystemSchedule::PerSystem => {
                    for sys in 0..n_sys {
                        self.record_phase(frame, Phase::Compute, |e| {
                            e.phase_creation(frame, sys)?;
                            e.phase_addition(frame, sys)?;
                            e.phase_calculus(frame, sys);
                            e.phase_collision(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Exchange, |e| {
                            e.phase_exchange(frame, sys, &mut fr)
                        })?;
                        let loads = self.record_phase(frame, Phase::LoadReport, |e| {
                            e.phase_loads(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Balance, |e| {
                            e.phase_balance(frame, sys, &loads, &mut fr)
                        })?;
                        self.record_phase(frame, Phase::Ship, |e| {
                            e.phase_ship(frame, sys, &mut fr)
                        })?;
                    }
                }
                SystemSchedule::Batched => {
                    self.record_phase(frame, Phase::Compute, |e| {
                        for sys in 0..n_sys {
                            e.phase_creation(frame, sys)?;
                            e.phase_addition(frame, sys)?;
                        }
                        for sys in 0..n_sys {
                            e.phase_calculus(frame, sys);
                            e.phase_collision(frame, sys)?;
                        }
                        Ok::<(), ProtocolError>(())
                    })?;
                    self.record_phase(frame, Phase::Exchange, |e| {
                        (0..n_sys).try_for_each(|sys| e.phase_exchange(frame, sys, &mut fr))
                    })?;
                    for sys in 0..n_sys {
                        let loads = self.record_phase(frame, Phase::LoadReport, |e| {
                            e.phase_loads(frame, sys)
                        })?;
                        self.record_phase(frame, Phase::Balance, |e| {
                            e.phase_balance(frame, sys, &loads, &mut fr)
                        })?;
                    }
                    self.record_phase(frame, Phase::Ship, |e| {
                        (0..n_sys).try_for_each(|sys| e.phase_ship(frame, sys, &mut fr))
                    })?;
                }
            }

            self.record_phase(frame, Phase::Render, |e| {
                // Fixed per-frame image cost (clear, encode, write).
                e.net.advance(e.ig, e.cost.per_frame_render_fixed / e.fe_speed);
                e.trace.record(frame, ProtocolEvent::ImageGeneration);

                // Parallel-phases frame boundary for the surviving compute
                // processes.
                let active = e.active_set();
                e.net.barrier(&active);
            });

            // Per-frame accounting (survivors only).
            let counts: Vec<f64> = (0..self.n)
                .filter(|&c| !self.crashed[c])
                .map(|c| self.calcs[c].stores.iter().map(|s| s.len() as f64).sum::<f64>())
                .collect();
            fr.imbalance = imbalance(&counts);
            let mk = self.net.makespan();
            fr.frame_time = mk - prev_makespan;
            prev_makespan = mk;
            fr.timeouts = self.frame_timeouts;
            self.frame_timeouts = 0;
            self.flush_frame_counters(frame, &fr);
            frames.push(fr);
        }
        Ok(())
    }

    /// Creation at the manager (paper §3.2.1): emit, route by domain, ship
    /// batches with end-of-transmission markers.
    fn phase_creation(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        let spec = self.scene.systems[sys].spec.clone();
        let mut rng_c = stream(self.cfg.seed, TAG_CREATE, frame, sys, 0);
        let mut newborn = std::mem::take(&mut self.newborn_scratch);
        newborn.clear();
        if frame == 0 {
            newborn = spec.emit_initial(&mut rng_c);
        }
        newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng_c)));
        self.net.advance(self.mgr, self.cost.create_time(newborn.len(), self.fe_speed));
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleCreation);
        }
        for p in newborn.drain(..) {
            self.create_batches[self.mgr_domains[sys].owner_of(p.position.along(AXIS))].push(p);
        }
        self.newborn_scratch = newborn;
        for c in 0..self.n {
            // The message owns its batch (it crosses the fabric); only the
            // staging spine and its capacity are reused.
            let batch: Vec<Particle> = self.create_batches[c].drain(..).collect();
            self.send_to(
                self.mgr,
                c,
                Msg::Particles { system: spec.id, batch, scale: self.scale },
            )?;
            self.send_to(self.mgr, c, Msg::EndOfTransmission { system: spec.id })?;
        }
        Ok(())
    }

    /// Calculators receive and store the newborn batches.
    fn phase_addition(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let batch = expect_virt!(self, c, self.mgr, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            expect_virt!(self, c, self.mgr, frame,
                Msg::EndOfTransmission { .. } => (), "EndOfTransmission");
            self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
            self.calcs[c].stores[sys].extend(batch);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::AdditionToLocalSet);
        }
        Ok(())
    }

    /// The action list ("Calculus" in Figure 2). A rank's injected
    /// slowdown inflates both the charged time and the load it will
    /// report, so dynamic balancing shifts work away from slow nodes.
    fn phase_calculus(&mut self, frame: u64, sys: usize) {
        let setup = self.scene.systems[sys].clone();
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let rng_a = stream(self.cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let pre = self.calcs[c].stores[sys].len();
            // The chunked kernel (legacy serial stream when chunk == 0).
            // Virtual time stays worker-count-invariant: the charged cost
            // depends only on the weighted work, so the same seed yields the
            // same fingerprint at every worker count.
            let kr = kernel::run_actions(
                &setup.actions,
                self.cfg.dt,
                frame,
                rng_a,
                &mut self.calcs[c].stores[sys],
                self.cfg.parallel.chunk,
                self.cfg.parallel.workers,
            );
            self.frame_chunks += kr.chunks;
            let factor = self.net.injector().compute_factor(c);
            let t = self.cost.weighted_work_time(kr.weighted, self.speeds[c]) * factor;
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] = t;
            self.calcs[c].pre_count[sys] = pre.max(1);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::Calculus);
        }
    }

    /// Optional inter-particle collision with ghost-slab exchange
    /// (§3.1.4 / the "exchanged during the computation" mode of §3.1.5).
    /// Ghosts are read-only copies, so a slab lost to a crashed neighbor
    /// degrades collision quality at the boundary without losing particles.
    fn phase_collision(&mut self, frame: u64, sys: usize) -> Result<(), ProtocolError> {
        let Some(col) = self.scene.collision else {
            return Ok(());
        };
        use psa_core::collide::{colliding_pairs, resolve_elastic_with_ghosts};
        let spec_id = self.scene.systems[sys].spec.id;
        let n = self.n;
        let slabs: Vec<Option<(Vec<Particle>, Vec<Particle>)>> = (0..n)
            .map(|c| {
                if self.crashed[c] {
                    None
                } else {
                    Some(self.calcs[c].stores[sys].boundary_slabs(col.cell))
                }
            })
            .collect();
        for (c, slab) in slabs.into_iter().enumerate() {
            let Some((low, high)) = slab else {
                continue;
            };
            if c > 0 {
                self.send_to(
                    c,
                    c - 1,
                    Msg::Ghosts { system: spec_id, batch: low, scale: self.scale },
                )?;
            }
            if c + 1 < n {
                self.send_to(
                    c,
                    c + 1,
                    Msg::Ghosts { system: spec_id, batch: high, scale: self.scale },
                )?;
            }
        }
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            let mut ghosts: Vec<Particle> = Vec::new();
            for d in [c.wrapping_sub(1), c + 1] {
                if d >= n || d == c {
                    continue;
                }
                match self.recv_from(c, d)? {
                    Some(Msg::Ghosts { batch, .. }) => ghosts.extend(batch),
                    Some(other) => {
                        return Err(ProtocolError::UnexpectedMessage {
                            role: "calculator",
                            rank: c,
                            frame,
                            expected: "Ghosts",
                            got: other.kind(),
                        })
                    }
                    None => {} // crashed/dead neighbor: no slab this frame
                }
            }
            let mut locals = self.calcs[c].stores[sys].take_all();
            let pairs = colliding_pairs(&locals, &ghosts, col.cell);
            resolve_elastic_with_ghosts(&mut locals, &ghosts, &pairs, col.restitution);
            let factor = self.net.injector().compute_factor(c);
            let t = self.cost.collision_time(locals.len() + ghosts.len(), self.speeds[c]) * factor;
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] += t;
            self.calcs[c].stores[sys].extend(locals);
        }
        Ok(())
    }

    /// End-of-frame particle exchange: leavers ship directly to their new
    /// owner (all domains are globally known). One message per ordered pair
    /// keeps receives directed and deterministic. Under `strict-invariants`
    /// the phase checks per-rank and global conservation, with the global
    /// check crediting particles lost toward crashed/dead destinations.
    fn phase_exchange(
        &mut self,
        frame: u64,
        sys: usize,
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let lost_at_start = self.lost;
        let mut before = vec![0usize; n];
        let mut outgoing = vec![0usize; n];
        let mut incoming = vec![0usize; n];
        let mut out_batches: Vec<Vec<Vec<Particle>>> = Vec::with_capacity(n);
        for (c, state) in self.calcs.iter_mut().enumerate() {
            if self.crashed[c] {
                out_batches.push(Vec::new());
                continue;
            }
            let len = state.stores[sys].len();
            before[c] = len;
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            state.stores[sys].collect_leavers_into(&mut self.leavers_scratch);
            let mut per_dest: Vec<Vec<Particle>> = vec![Vec::new(); n];
            let dm = &state.domains[sys];
            for p in self.leavers_scratch.drain(..) {
                let owner = dm.owner_of(p.position.along(AXIS));
                per_dest[owner].push(p);
            }
            let homebound = std::mem::take(&mut per_dest[c]);
            state.stores[sys].extend(homebound);
            out_batches.push(per_dest);
        }
        for (c, per_dest) in out_batches.into_iter().enumerate() {
            if self.crashed[c] {
                continue;
            }
            let total_sent: usize = per_dest.iter().map(Vec::len).sum();
            outgoing[c] = total_sent;
            self.net.advance(c, self.cost.pack_time(total_sent, self.speeds[c]));
            // "particles that belong to another calculator" (§5.1):
            // only actually-shipped particles count as migration.
            fr.migrated += (total_sent as f64 * self.scale) as u64;
            fr.migration_bytes += self.cost.wire_bytes(total_sent, WIRE_BYTES);
            for (d, batch) in per_dest.into_iter().enumerate() {
                if d != c {
                    self.send_to(
                        c,
                        d,
                        Msg::Particles { system: spec_id, batch, scale: self.scale },
                    )?;
                }
            }
        }
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            for d in 0..n {
                if d == c || self.dead[d] {
                    continue;
                }
                match self.recv_from(c, d)? {
                    Some(Msg::Particles { batch, .. }) => {
                        incoming[c] += batch.len();
                        self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
                        self.calcs[c].stores[sys].extend(batch);
                    }
                    Some(other) => {
                        return Err(ProtocolError::UnexpectedMessage {
                            role: "calculator",
                            rank: c,
                            frame,
                            expected: "Particles",
                            got: other.kind(),
                        })
                    }
                    None => {} // crashed peer sent nothing; wait was charged
                }
            }
        }
        if invariants::ENABLED {
            let mut before_sum = 0usize;
            let mut after_sum = 0usize;
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                let after = self.calcs[c].stores[sys].len();
                invariants::check_exchange_conservation(
                    frame,
                    sys,
                    c,
                    before[c],
                    outgoing[c],
                    incoming[c],
                    after,
                )?;
                // A NaN position evades every slice (owner_of cannot place
                // it) while conservation still balances — reject it here.
                invariants::check_finite_positions(
                    frame,
                    sys,
                    c,
                    self.calcs[c].stores[sys].iter(),
                )?;
                before_sum += before[c];
                after_sum += after;
            }
            invariants::check_global_conservation_with_losses(
                frame,
                sys,
                before_sum,
                after_sum,
                (self.lost - lost_at_start) as usize,
            )?;
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleExchange);
        }
        Ok(())
    }

    /// Load reports (paper §3.2.4), with the time rescaled to the
    /// post-exchange population. Under the centralized modes the manager
    /// gathers them; under the decentralized mode each calculator also
    /// shares its report with its domain neighbors. A calculator that
    /// misses [`FaultPolicy::dead_after`] consecutive gathers is declared
    /// dead. `None` entries mark ranks the manager has no report from.
    fn phase_loads(
        &mut self,
        frame: u64,
        sys: usize,
    ) -> Result<Vec<Option<LoadInfo>>, ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let decentralized = matches!(self.cfg.balance, BalanceMode::Decentralized(_));
        for c in 0..n {
            if self.crashed[c] {
                continue;
            }
            let count = self.calcs[c].stores[sys].len();
            let time = self.calcs[c].compute_time[sys] * count as f64
                / self.calcs[c].pre_count[sys] as f64;
            let info = LoadInfo { count, time };
            self.send_to(c, self.mgr, Msg::Load { system: spec_id, info, migrated: 0 })?;
            if decentralized {
                if c > 0 {
                    self.send_to(c, c - 1, Msg::Load { system: spec_id, info, migrated: 0 })?;
                }
                if c + 1 < n {
                    self.send_to(c, c + 1, Msg::Load { system: spec_id, info, migrated: 0 })?;
                }
            }
        }
        let mut loads: Vec<Option<LoadInfo>> = vec![None; n];
        for c in 0..n {
            if self.dead[c] {
                continue;
            }
            match self.recv_from(self.mgr, c)? {
                Some(Msg::Load { info, .. }) => {
                    loads[c] = Some(info);
                    self.missed[c] = 0;
                }
                Some(other) => {
                    return Err(ProtocolError::UnexpectedMessage {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        expected: "Load",
                        got: other.kind(),
                    })
                }
                None => {
                    self.missed[c] += 1;
                    if self.missed[c] >= self.policy.dead_after {
                        self.declare_dead(c, frame)?;
                    }
                }
            }
        }
        if decentralized {
            // Each calculator consumes its neighbors' reports (the content
            // equals `loads`; the receive charges the communication).
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                for d in [c.wrapping_sub(1), c + 1] {
                    if d >= n || d == c {
                        continue;
                    }
                    match self.recv_from(c, d)? {
                        Some(Msg::Load { .. }) | None => {}
                        Some(other) => {
                            return Err(ProtocolError::UnexpectedMessage {
                                role: "calculator",
                                rank: c,
                                frame,
                                expected: "Load",
                                got: other.kind(),
                            })
                        }
                    }
                }
            }
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::LoadInformation);
        }
        Ok(loads)
    }

    /// The balancing phase: centralized (§3.2.5), decentralized (§6 future
    /// work), or the plain synchronization step static balancing needs.
    /// Degraded-mode domain reassignment rides the centralized mode's
    /// every-round `Domains` broadcast; the static mode has no broadcast,
    /// so a dead slice stays collapsed but survivors keep stale replicas
    /// (their misdirected sends are counted as lost).
    fn phase_balance(
        &mut self,
        frame: u64,
        sys: usize,
        loads: &[Option<LoadInfo>],
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        match self.cfg.balance {
            BalanceMode::Dynamic(bcfg) => {
                let present: Vec<usize> = (0..self.n).filter(|&c| loads[c].is_some()).collect();
                let pl: Vec<LoadInfo> = present.iter().filter_map(|&c| loads[c]).collect();
                let powers: Vec<f64> = present.iter().map(|&c| self.speeds[c]).collect();
                let transfers = if present.len() >= 2 {
                    balance::evaluate_present(&pl, &powers, &present, self.parity, &bcfg)
                } else {
                    Vec::new()
                };
                self.parity ^= 1;
                debug_assert!(balance::validate_transfers_mapped(&transfers, &present).is_ok());
                self.net.advance(
                    self.mgr,
                    self.cost.balance_eval_time(present.len().saturating_sub(1), self.fe_speed),
                );
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                }
                let spec_id = self.scene.systems[sys].spec.id;
                for &c in &present {
                    self.send_to(
                        self.mgr,
                        c,
                        Msg::Orders { system: spec_id, orders: balance::orders_for(&transfers, c) },
                    )?;
                }
                for &c in &present {
                    expect_virt!(self, c, self.mgr, frame, Msg::Orders { .. } => (), "Orders");
                }
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingOrders);
                }
                self.execute_transfers(frame, sys, &transfers, fr, true)?;
            }
            BalanceMode::Decentralized(bcfg) => {
                // Every pair decides from the reports exchanged in
                // phase_loads; the computation is replicated and identical
                // on both endpoints, so no orders are needed. Pairs with a
                // silent endpoint skip their round.
                let filled: Vec<LoadInfo> = loads.iter().map(|l| l.unwrap_or_default()).collect();
                let mut transfers = balance::evaluate_decentralized(&filled, &self.speeds, &bcfg);
                transfers.retain(|t| loads[t.donor].is_some() && loads[t.receiver].is_some());
                for c in 0..self.n {
                    if self.crashed[c] {
                        continue;
                    }
                    self.net.advance(c, self.cost.balance_eval_time(2, self.speeds[c]));
                }
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                }
                self.execute_transfers(frame, sys, &transfers, fr, false)?;
            }
            BalanceMode::Static => {
                // Without balancing the model still requires a
                // synchronization step (paper §3.2) so a fast calculator
                // cannot race a frame ahead.
                let active = self.active_set();
                self.net.barrier(&active);
            }
        }
        Ok(())
    }

    /// Execute a decided transfer set: donors select particles and compute
    /// new cuts, the domain update is disseminated (via the manager when
    /// `via_manager`, else donor-broadcast), every calculator redefines its
    /// local domains, then the particles move. With dead ranks between a
    /// donor/receiver pair, the manager moves every boundary in the gap
    /// (the collapsed zero-width slices ride along with the cut).
    fn execute_transfers(
        &mut self,
        frame: u64,
        sys: usize,
        transfers: &[Transfer],
        fr: &mut FrameReport,
        via_manager: bool,
    ) -> Result<(), ProtocolError> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        self.frame_orders += transfers.len() as u64;

        // Donors prepare structures and compute new cuts. Decentralized
        // rounds may have one calculator donating on both sides; processing
        // transfers in boundary order keeps the donations sequential and
        // the kept-extent bookkeeping exact.
        let mut ordered: Vec<Transfer> = transfers.to_vec();
        ordered.sort_by_key(|t| t.donor.min(t.receiver));
        let mut donations: Vec<(usize, usize, Vec<Particle>)> = Vec::new();
        let mut cuts: Vec<(usize, usize, Scalar)> = Vec::new(); // (donor, receiver, cut)
        for t in &ordered {
            let donor = t.donor;
            let receiver = t.receiver;
            let amount = t.amount.min(self.calcs[donor].stores[sys].len());
            let store = &mut self.calcs[donor].stores[sys];
            let old_slice = store.slice();
            let (mut donated, sorted) =
                if receiver < donor { store.donate_low(amount) } else { store.donate_high(amount) };
            self.net.advance(
                donor,
                self.cost.sort_time(sorted, self.speeds[donor])
                    + self.cost.pack_time(donated.len(), self.speeds[donor]),
            );
            let kept = self.calcs[donor].stores[sys].extent();
            let cut = donation_cut(receiver < donor, &donated, kept, old_slice);
            // Half-open tie guard: a donated particle exactly at the cut
            // still belongs to the donor.
            if receiver < donor {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) >= cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) < cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            } else {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) < cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) >= cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            }
            cuts.push((donor, receiver, cut));
            donations.push((donor, receiver, donated));
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::PreparationOfStructures);
        }

        if via_manager {
            // Donors report cuts to the manager, which updates the
            // authoritative map and rebroadcasts (paper §3.2.5).
            for &(donor, receiver, cut) in &cuts {
                self.send_to(
                    donor,
                    self.mgr,
                    Msg::NewCut { system: spec_id, boundary: donor.min(receiver), cut },
                )?;
            }
            for &(donor, receiver, _) in &cuts {
                let cut = expect_virt!(self, self.mgr, donor, frame,
                    Msg::NewCut { cut, .. } => cut, "NewCut");
                apply_cut_span(&mut self.mgr_domains[sys], donor, receiver, cut).map_err(|e| {
                    ProtocolError::Domain {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        detail: format!("applying cut from donor {donor}: {e}"),
                    }
                })?;
            }
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                self.send_to(
                    self.mgr,
                    c,
                    Msg::Domains { system: spec_id, cuts: self.mgr_domains[sys].cuts().to_vec() },
                )?;
            }
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                let new_cuts = expect_virt!(self, c, self.mgr, frame,
                    Msg::Domains { cuts, .. } => cuts, "Domains");
                let dm =
                    DomainMap::from_cuts(AXIS, new_cuts).map_err(|e| ProtocolError::Domain {
                        role: "calculator",
                        rank: c,
                        frame,
                        detail: format!("broadcast domains invalid: {e}"),
                    })?;
                self.apply_domains(c, sys, dm);
            }
        } else {
            // Decentralized: each donor broadcasts its cut to every
            // running process (manager included — it still routes
            // creation), and every process applies the cuts in order.
            for &(donor, receiver, cut) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor && !(c < n && self.crashed[c]) {
                        self.send_to(
                            donor,
                            c,
                            Msg::NewCut { system: spec_id, boundary: donor.min(receiver), cut },
                        )?;
                    }
                }
            }
            let applied: Vec<(usize, Scalar)> =
                cuts.iter().map(|&(d, r, cut)| (d.min(r), cut)).collect();
            for &(donor, _, _) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor && !(c < n && self.crashed[c]) {
                        expect_virt!(self, c, donor, frame,
                            Msg::NewCut { .. } => (), "NewCut");
                    }
                }
            }
            for &(boundary, cut) in &applied {
                self.mgr_domains[sys].move_cut(boundary, cut).map_err(|e| {
                    ProtocolError::Domain {
                        role: "manager",
                        rank: self.mgr,
                        frame,
                        detail: format!("decentralized cut at boundary {boundary}: {e}"),
                    }
                })?;
            }
            let dm = self.mgr_domains[sys].clone();
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            for c in 0..n {
                if self.crashed[c] {
                    continue;
                }
                self.apply_domains(c, sys, dm.clone());
            }
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::DefinitionOfLocalDomains);
        }

        // The donations themselves.
        for (donor, receiver, donated) in donations {
            fr.balanced += (donated.len() as f64 * self.scale) as u64;
            self.send_to(
                donor,
                receiver,
                Msg::Particles { system: spec_id, batch: donated, scale: self.scale },
            )?;
        }
        for t in &ordered {
            let batch = expect_virt!(self, t.receiver, t.donor, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            self.net.advance(t.receiver, self.cost.pack_time(batch.len(), self.speeds[t.receiver]));
            self.calcs[t.receiver].stores[sys].extend(batch);
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::LoadBalanceBetweenCalculators);
        }
        Ok(())
    }

    /// Install an updated domain map at calculator `c`, reshaping its store
    /// if its own slice changed.
    fn apply_domains(&mut self, c: usize, sys: usize, dm: DomainMap) {
        let new_slice = dm.slice(c);
        self.calcs[c].domains[sys] = dm;
        if self.calcs[c].stores[sys].slice() != new_slice {
            let len = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            let stray = self.calcs[c].stores[sys].reshape(new_slice);
            // Out-of-space particles pool at the edge calculators
            // (owner_of clamps); they stay here until a kill action removes
            // them. In-space strays would mean a broken cut.
            debug_assert!(
                {
                    let space = self.calcs[c].domains[sys].space();
                    stray.iter().all(|p| {
                        let v = p.position.along(AXIS);
                        v < space.lo || v >= space.hi
                    })
                },
                "in-space stray after reshape: rank {c} slice {new_slice} strays {:?}",
                stray.iter().map(|p| p.position.x).collect::<Vec<_>>(),
            );
            self.calcs[c].stores[sys].extend(stray);
        }
    }

    /// Ship render payloads to the image generator. The image generator
    /// tolerates silent (crashed) calculators — every post-crash frame is
    /// still rendered from the survivors' batches.
    fn phase_ship(
        &mut self,
        frame: u64,
        sys: usize,
        fr: &mut FrameReport,
    ) -> Result<(), ProtocolError> {
        let spec_id = self.scene.systems[sys].spec.id;
        for c in 0..self.n {
            if self.crashed[c] {
                continue;
            }
            let count = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.pack_time(count, self.speeds[c]));
            self.send_to(
                c,
                self.ig,
                Msg::RenderBatch { system: spec_id, count, scale: self.scale },
            )?;
        }
        let mut frame_particles = 0usize;
        for c in 0..self.n {
            match self.recv_from(self.ig, c)? {
                Some(Msg::RenderBatch { count, .. }) => frame_particles += count,
                Some(other) => {
                    return Err(ProtocolError::UnexpectedMessage {
                        role: "image generator",
                        rank: self.ig,
                        frame,
                        expected: "RenderBatch",
                        got: other.kind(),
                    })
                }
                None => {} // crashed/dead calculator: render without it
            }
        }
        self.net.advance(
            self.ig,
            self.cost.virt(frame_particles) * self.cost.per_render / self.fe_speed,
        );
        fr.alive += (frame_particles as f64 * self.scale) as u64;
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticlesToImageGenerator);
        }
        Ok(())
    }
}

/// Move every boundary between `donor` and `receiver` to `cut`. Adjacent
/// pairs reduce to the single §3.2.5 `move_cut`; when declared-dead ranks
/// sit between the pair, their collapsed zero-width slices ride along with
/// the cut (every boundary strictly between an alive pair coincides at the
/// shared edge, which makes the sweep range-safe in both directions).
fn apply_cut_span(
    dm: &mut DomainMap,
    donor: usize,
    receiver: usize,
    cut: Scalar,
) -> Result<(), psa_core::domain::DomainError> {
    if donor < receiver {
        (donor..receiver).try_for_each(|b| dm.move_cut(b, cut))
    } else {
        (receiver..donor).rev().try_for_each(|b| dm.move_cut(b, cut))
    }
}

/// Compute the new domain cut after a donation (shared with the threaded
/// executor).
///
/// `low_side` is true when donating toward the *left* (lower) neighbor.
/// `kept` is the donor's remaining extent along the axis. The cut is placed
/// midway between the donated extreme and the kept extreme, falling back to
/// the old slice edge when one side is empty.
pub fn donation_cut(
    low_side: bool,
    donated: &[Particle],
    kept: Option<(Scalar, Scalar)>,
    old_slice: Interval,
) -> Scalar {
    let axis = AXIS;
    if donated.is_empty() {
        return if low_side { old_slice.lo } else { old_slice.hi };
    }
    if low_side {
        // Donor keeps [cut, hi): kept_min >= cut always holds for any cut
        // <= kept_min, and donated particles at exactly `cut` are returned
        // to the donor by the caller's tie guard.
        let donated_max =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::NEG_INFINITY, Scalar::max);
        match kept {
            Some((kept_min, _)) => 0.5 * (donated_max + kept_min),
            None => old_slice.hi,
        }
    } else {
        // Donor keeps [lo, cut): the cut must be STRICTLY above kept_max or
        // kept particles fall outside the half-open slice. When the
        // midpoint collapses onto kept_max (tied positions — e.g. a whole
        // emission cohort from a point source), fall back to the smallest
        // donated coordinate strictly above kept_max; if none exists the
        // donation degenerates and the boundary stays put (the caller's tie
        // guard returns every donated particle to the donor).
        let donated_min =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::INFINITY, Scalar::min);
        match kept {
            Some((_, kept_max)) => {
                let mid = 0.5 * (kept_max + donated_min);
                if mid > kept_max {
                    mid
                } else {
                    let next = donated
                        .iter()
                        .map(|p| p.position.along(axis))
                        .filter(|v| *v > kept_max)
                        .fold(Scalar::INFINITY, Scalar::min);
                    if next.is_finite() {
                        next
                    } else {
                        old_slice.hi
                    }
                }
            }
            None => old_slice.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    #[test]
    fn new_cut_midpoint_low_side() {
        let donated = vec![Particle::at(Vec3::new(1.0, 0.0, 0.0))];
        let cut = donation_cut(true, &donated, Some((3.0, 9.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 2.0);
    }

    #[test]
    fn new_cut_midpoint_high_side() {
        let donated = vec![Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 7.0);
    }

    #[test]
    fn new_cut_empty_donation_keeps_edges() {
        assert_eq!(donation_cut(true, &[], Some((1.0, 2.0)), Interval::new(0.0, 10.0)), 0.0);
        assert_eq!(donation_cut(false, &[], None, Interval::new(0.0, 10.0)), 10.0);
    }

    #[test]
    fn new_cut_high_side_tie_uses_next_distinct_value() {
        // kept_max == donated_min (an emission cohort with identical
        // positions was split): the cut must be strictly above kept_max.
        let donated =
            vec![Particle::at(Vec3::new(6.0, 0.0, 0.0)), Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert!(cut > 6.0, "cut {cut} must exceed kept_max");
        assert_eq!(cut, 8.0, "smallest strictly-greater donated value");
    }

    #[test]
    fn new_cut_high_side_full_tie_degenerates_to_old_boundary() {
        let donated = vec![Particle::at(Vec3::new(6.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 10.0, "no separating cut exists; boundary unchanged");
    }

    #[test]
    fn new_cut_total_donation_takes_whole_slice() {
        let donated = vec![Particle::at(Vec3::new(5.0, 0.0, 0.0))];
        // donating low with nothing kept: slice collapses to its high edge
        assert_eq!(donation_cut(true, &donated, None, Interval::new(0.0, 10.0)), 10.0);
        assert_eq!(donation_cut(false, &donated, None, Interval::new(0.0, 10.0)), 0.0);
    }

    #[test]
    fn cut_span_adjacent_matches_single_move() {
        let mut a = DomainMap::split_even(Interval::new(0.0, 10.0), AXIS, 4);
        let mut b = a.clone();
        apply_cut_span(&mut a, 1, 2, 4.0).unwrap();
        b.move_cut(1, 4.0).unwrap();
        assert_eq!(a.cuts(), b.cuts());
        // And the reverse orientation hits the same boundary.
        let mut c = DomainMap::split_even(Interval::new(0.0, 10.0), AXIS, 4);
        apply_cut_span(&mut c, 2, 1, 4.0).unwrap();
        assert_eq!(a.cuts(), c.cuts());
    }

    #[test]
    fn cut_span_rides_over_collapsed_dead_slices() {
        // Ranks 1 and 2 are dead: their slices sit at zero width on rank
        // 0's high edge (2.5) and rank 3 absorbed their space.
        let mut dm = DomainMap::from_cuts(AXIS, vec![0.0, 2.5, 2.5, 2.5, 7.5, 10.0]).unwrap();
        // Donor 3 donates low toward receiver 0: every boundary in the gap
        // must land on the new cut.
        apply_cut_span(&mut dm, 3, 0, 5.0).unwrap();
        assert_eq!(dm.cuts(), &[0.0, 5.0, 5.0, 5.0, 7.5, 10.0]);
        // And the upward direction from the low side.
        let mut dm2 = DomainMap::from_cuts(AXIS, vec![0.0, 2.5, 2.5, 2.5, 7.5, 10.0]).unwrap();
        apply_cut_span(&mut dm2, 0, 3, 1.0).unwrap();
        assert_eq!(dm2.cuts(), &[0.0, 1.0, 1.0, 1.0, 7.5, 10.0]);
    }
}
