//! The deterministic virtual-time executor.
//!
//! Runs the paper's full frame protocol (Figure 2) over a simulated
//! heterogeneous cluster: real particles move through real data structures,
//! while per-rank virtual clocks and the `netsim` fabric account for what
//! the compute and communication would cost on the modeled hardware. The
//! result is bit-deterministic, so every table in EXPERIMENTS.md
//! regenerates identically from the seed.
//!
//! Rank layout: `0..n` are calculators (one per domain slice, in slice
//! order), `n` is the manager, `n + 1` the image generator. The manager and
//! image generator live on the front-end node (node 0).
//!
//! The frame body is factored into one method per protocol phase so the
//! §3.3 system-combination strategies ([`SystemSchedule`]) can reorder the
//! same phases: `PerSystem` runs each system's full protocol in sequence
//! (Figure 2 verbatim); `Batched` runs each phase across all systems before
//! the next phase starts.

use cluster_sim::{ClusterSpec, CostModel, Placement};
use netsim::VirtualNet;
use psa_core::actions::ActionCtx;
use psa_core::{DomainMap, Particle, SubDomainStore, WIRE_BYTES};
use psa_math::stats::imbalance;
use psa_math::{Axis, Interval, Rng64, Scalar};

use crate::balance::{self, LoadInfo, Transfer};
use crate::config::{BalanceMode, RunConfig, SpaceMode, SystemSchedule};
use crate::msg::Msg;
use crate::report::{FrameReport, RunReport};
use crate::scene::Scene;
use crate::trace::{ProtocolEvent, Trace};

/// RNG stream tags (see `stream`).
const TAG_CREATE: u64 = 0xC0;
const TAG_ACTIONS: u64 = 0xAC;

/// The decomposition axis (paper: one axis of the plane or space).
const AXIS: Axis = Axis::X;

/// Derive the deterministic stream for (tag, frame, system, rank).
fn stream(seed: u64, tag: u64, frame: u64, sys: usize, rank: usize) -> Rng64 {
    Rng64::new(seed).split(tag).split(frame).split(sys as u64).split(rank as u64)
}

/// Per-calculator state.
struct CalcState {
    /// One sub-domain store per system.
    stores: Vec<SubDomainStore>,
    /// Local replica of every system's domain map (all processes know all
    /// domains, paper §3.1.4).
    domains: Vec<DomainMap>,
    /// This frame's per-system compute time (pre-exchange population).
    compute_time: Vec<f64>,
    /// Population the compute time was measured on.
    pre_count: Vec<usize>,
}

/// The virtual-time executor.
pub struct VirtualSim {
    scene: Scene,
    cfg: RunConfig,
    cluster: ClusterSpec,
    placement: Placement,
    cost: CostModel,
    trace: Trace,
}

impl VirtualSim {
    pub fn new(scene: Scene, cfg: RunConfig, cluster: ClusterSpec, cost: CostModel) -> Self {
        assert!(!scene.systems.is_empty(), "scene needs at least one system");
        let placement = cluster.placement();
        VirtualSim { scene, cfg, cluster, placement, cost, trace: Trace::disabled() }
    }

    /// Record protocol events (used by the Figure-2 test; off by default).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run the animation; returns the report (including the virtual
    /// makespan used for speed-up computation).
    pub fn run(&mut self) -> RunReport {
        let mut engine = Engine::new(
            self.scene.clone(),
            self.cfg.clone(),
            &self.placement,
            self.cluster.net.clone(),
            self.cost.clone(),
            std::mem::take(&mut self.trace),
        );
        let (report, trace) = engine.run(self.cluster.describe());
        self.trace = trace;
        report
    }
}

/// The running frame machinery: every rank's state plus the fabric.
struct Engine {
    scene: Scene,
    cfg: RunConfig,
    cost: CostModel,
    net: VirtualNet<Msg>,
    calcs: Vec<CalcState>,
    mgr_domains: Vec<DomainMap>,
    speeds: Vec<f64>,
    fe_speed: f64,
    scale: f64,
    n: usize,
    mgr: usize,
    ig: usize,
    parity: usize,
    calc_and_mgr: Vec<usize>,
    trace: Trace,
}

impl Engine {
    fn new(
        scene: Scene,
        cfg: RunConfig,
        placement: &Placement,
        net_model: cluster_sim::NetworkModel,
        cost: CostModel,
        trace: Trace,
    ) -> Self {
        let n = placement.calculators();
        let n_sys = scene.systems.len();
        let mut node_of: Vec<usize> = placement.ranks.iter().map(|r| r.node).collect();
        node_of.push(placement.frontend_node);
        node_of.push(placement.frontend_node);
        let net = VirtualNet::new(net_model, node_of, placement.node_count);
        let space_for = |sys: usize| -> Interval {
            match cfg.space {
                SpaceMode::Finite => scene.systems[sys].spec.space,
                SpaceMode::Infinite => Interval::INFINITE,
            }
        };
        let mgr_domains: Vec<DomainMap> =
            (0..n_sys).map(|s| DomainMap::split_even(space_for(s), AXIS, n)).collect();
        let calcs: Vec<CalcState> = (0..n)
            .map(|c| CalcState {
                stores: (0..n_sys)
                    .map(|s| SubDomainStore::new(mgr_domains[s].slice(c), AXIS, cfg.buckets))
                    .collect(),
                domains: mgr_domains.clone(),
                compute_time: vec![0.0; n_sys],
                pre_count: vec![0; n_sys],
            })
            .collect();
        Engine {
            speeds: placement.ranks.iter().map(|r| r.speed).collect(),
            fe_speed: placement.frontend_speed,
            scale: cost.scale,
            n,
            mgr: n,
            ig: n + 1,
            parity: 0,
            calc_and_mgr: (0..n).chain([n]).collect(),
            scene,
            cfg,
            cost,
            net,
            calcs,
            mgr_domains,
            trace,
        }
    }

    fn run(&mut self, cluster_label: String) -> (RunReport, Trace) {
        let n_sys = self.scene.systems.len();
        let mut frames = Vec::with_capacity(self.cfg.frames as usize);
        let mut prev_makespan = 0.0;

        for frame in 0..self.cfg.frames {
            let mut fr = FrameReport { frame, ..Default::default() };

            match self.cfg.schedule {
                SystemSchedule::PerSystem => {
                    for sys in 0..n_sys {
                        self.phase_creation(frame, sys);
                        self.phase_addition(frame, sys);
                        self.phase_calculus(frame, sys);
                        self.phase_collision(sys);
                        self.phase_exchange(frame, sys, &mut fr);
                        let loads = self.phase_loads(frame, sys);
                        self.phase_balance(frame, sys, &loads, &mut fr);
                        self.phase_ship(frame, sys, &mut fr);
                    }
                }
                SystemSchedule::Batched => {
                    for sys in 0..n_sys {
                        self.phase_creation(frame, sys);
                        self.phase_addition(frame, sys);
                    }
                    for sys in 0..n_sys {
                        self.phase_calculus(frame, sys);
                        self.phase_collision(sys);
                    }
                    for sys in 0..n_sys {
                        self.phase_exchange(frame, sys, &mut fr);
                    }
                    for sys in 0..n_sys {
                        let loads = self.phase_loads(frame, sys);
                        self.phase_balance(frame, sys, &loads, &mut fr);
                    }
                    for sys in 0..n_sys {
                        self.phase_ship(frame, sys, &mut fr);
                    }
                }
            }

            // Fixed per-frame image cost (clear, encode, write).
            self.net.advance(self.ig, self.cost.per_frame_render_fixed / self.fe_speed);
            self.trace.record(frame, ProtocolEvent::ImageGeneration);

            // Parallel-phases frame boundary for compute processes.
            self.net.barrier(&self.calc_and_mgr);

            // Per-frame accounting.
            let counts: Vec<f64> = (0..self.n)
                .map(|c| self.calcs[c].stores.iter().map(|s| s.len() as f64).sum::<f64>())
                .collect();
            fr.imbalance = imbalance(&counts);
            let mk = self.net.makespan();
            fr.frame_time = mk - prev_makespan;
            prev_makespan = mk;
            frames.push(fr);
        }

        let kept: Vec<FrameReport> =
            frames.into_iter().filter(|f| f.frame >= self.cfg.warmup).collect();
        let report = RunReport {
            label: self.cfg.label(),
            cluster: cluster_label,
            calculators: self.n,
            total_time: self.net.makespan(),
            frames: kept,
            traffic: self.net.stats(),
        };
        (report, std::mem::take(&mut self.trace))
    }

    /// Creation at the manager (paper §3.2.1): emit, route by domain, ship
    /// batches with end-of-transmission markers.
    fn phase_creation(&mut self, frame: u64, sys: usize) {
        let spec = &self.scene.systems[sys].spec;
        let mut rng_c = stream(self.cfg.seed, TAG_CREATE, frame, sys, 0);
        let mut newborn: Vec<Particle> =
            if frame == 0 { spec.emit_initial(&mut rng_c) } else { Vec::new() };
        newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng_c)));
        self.net.advance(self.mgr, self.cost.create_time(newborn.len(), self.fe_speed));
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleCreation);
        }
        let mut batches: Vec<Vec<Particle>> = vec![Vec::new(); self.n];
        for p in newborn {
            batches[self.mgr_domains[sys].owner_of(p.position.along(AXIS))].push(p);
        }
        for (c, batch) in batches.into_iter().enumerate() {
            self.net.send(
                self.mgr,
                c,
                Msg::Particles { system: spec.id, batch, scale: self.scale },
            );
            self.net.send(self.mgr, c, Msg::EndOfTransmission { system: spec.id });
        }
    }

    /// Calculators receive and store the newborn batches.
    fn phase_addition(&mut self, frame: u64, sys: usize) {
        for c in 0..self.n {
            let Msg::Particles { batch, .. } =
                self.net.recv(c, self.mgr).expect("deterministic schedule delivers")
            else {
                panic!("expected creation batch");
            };
            let Msg::EndOfTransmission { .. } =
                self.net.recv(c, self.mgr).expect("deterministic schedule delivers")
            else {
                panic!("expected end of transmission");
            };
            self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
            self.calcs[c].stores[sys].extend(batch);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::AdditionToLocalSet);
        }
    }

    /// The action list ("Calculus" in Figure 2).
    fn phase_calculus(&mut self, frame: u64, sys: usize) {
        let setup = self.scene.systems[sys].clone();
        for c in 0..self.n {
            let mut rng_a = stream(self.cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let mut ctx = ActionCtx { dt: self.cfg.dt, frame, rng: &mut rng_a };
            let pre = self.calcs[c].stores[sys].len();
            let (_outcome, weighted) = setup.actions.run(&mut ctx, &mut self.calcs[c].stores[sys]);
            let t = self.cost.weighted_work_time(weighted, self.speeds[c]);
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] = t;
            self.calcs[c].pre_count[sys] = pre.max(1);
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::Calculus);
        }
    }

    /// Optional inter-particle collision with ghost-slab exchange
    /// (§3.1.4 / the "exchanged during the computation" mode of §3.1.5).
    fn phase_collision(&mut self, sys: usize) {
        let Some(col) = self.scene.collision else {
            return;
        };
        use psa_core::collide::{colliding_pairs, resolve_elastic_with_ghosts};
        let spec_id = self.scene.systems[sys].spec.id;
        let n = self.n;
        let slabs: Vec<(Vec<Particle>, Vec<Particle>)> =
            (0..n).map(|c| self.calcs[c].stores[sys].boundary_slabs(col.cell)).collect();
        for (c, (low, high)) in slabs.into_iter().enumerate() {
            if c > 0 {
                self.net.send(
                    c,
                    c - 1,
                    Msg::Ghosts { system: spec_id, batch: low, scale: self.scale },
                );
            }
            if c + 1 < n {
                self.net.send(
                    c,
                    c + 1,
                    Msg::Ghosts { system: spec_id, batch: high, scale: self.scale },
                );
            }
        }
        for c in 0..n {
            let mut ghosts: Vec<Particle> = Vec::new();
            if c > 0 {
                let Msg::Ghosts { batch, .. } =
                    self.net.recv(c, c - 1).expect("deterministic schedule delivers")
                else {
                    panic!("expected ghost slab");
                };
                ghosts.extend(batch);
            }
            if c + 1 < n {
                let Msg::Ghosts { batch, .. } =
                    self.net.recv(c, c + 1).expect("deterministic schedule delivers")
                else {
                    panic!("expected ghost slab");
                };
                ghosts.extend(batch);
            }
            let mut locals = self.calcs[c].stores[sys].take_all();
            let pairs = colliding_pairs(&locals, &ghosts, col.cell);
            resolve_elastic_with_ghosts(&mut locals, &ghosts, &pairs, col.restitution);
            let t = self.cost.collision_time(locals.len() + ghosts.len(), self.speeds[c]);
            self.net.advance(c, t);
            self.calcs[c].compute_time[sys] += t;
            self.calcs[c].stores[sys].extend(locals);
        }
    }

    /// End-of-frame particle exchange: leavers ship directly to their new
    /// owner (all domains are globally known). One message per ordered pair
    /// keeps receives directed and deterministic.
    fn phase_exchange(&mut self, frame: u64, sys: usize, fr: &mut FrameReport) {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let mut outgoing: Vec<Vec<Vec<Particle>>> = Vec::with_capacity(n);
        for (c, state) in self.calcs.iter_mut().enumerate() {
            let len = state.stores[sys].len();
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            let leavers = state.stores[sys].collect_leavers();
            let mut per_dest: Vec<Vec<Particle>> = vec![Vec::new(); n];
            let dm = &state.domains[sys];
            for p in leavers {
                let owner = dm.owner_of(p.position.along(AXIS));
                per_dest[owner].push(p);
            }
            let homebound = std::mem::take(&mut per_dest[c]);
            state.stores[sys].extend(homebound);
            outgoing.push(per_dest);
        }
        for (c, per_dest) in outgoing.into_iter().enumerate() {
            let total_sent: usize = per_dest.iter().map(Vec::len).sum();
            self.net.advance(c, self.cost.pack_time(total_sent, self.speeds[c]));
            // "particles that belong to another calculator" (§5.1):
            // only actually-shipped particles count as migration.
            fr.migrated += (total_sent as f64 * self.scale) as u64;
            fr.migration_bytes += self.cost.wire_bytes(total_sent, WIRE_BYTES);
            for (d, batch) in per_dest.into_iter().enumerate() {
                if d != c {
                    self.net.send(
                        c,
                        d,
                        Msg::Particles { system: spec_id, batch, scale: self.scale },
                    );
                }
            }
        }
        for c in 0..n {
            for d in 0..n {
                if d == c {
                    continue;
                }
                let Msg::Particles { batch, .. } =
                    self.net.recv(c, d).expect("deterministic schedule delivers")
                else {
                    panic!("expected exchange batch");
                };
                self.net.advance(c, self.cost.pack_time(batch.len(), self.speeds[c]));
                self.calcs[c].stores[sys].extend(batch);
            }
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticleExchange);
        }
    }

    /// Load reports (paper §3.2.4), with the time rescaled to the
    /// post-exchange population. Under the centralized modes the manager
    /// gathers them; under the decentralized mode each calculator also
    /// shares its report with its domain neighbors.
    fn phase_loads(&mut self, frame: u64, sys: usize) -> Vec<LoadInfo> {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;
        let decentralized = matches!(self.cfg.balance, BalanceMode::Decentralized(_));
        let mut local_loads = vec![LoadInfo::default(); n];
        #[allow(clippy::needless_range_loop)]
        // c is a rank: indexes calcs, loads, and addresses sends
        for c in 0..n {
            let count = self.calcs[c].stores[sys].len();
            let time = self.calcs[c].compute_time[sys] * count as f64
                / self.calcs[c].pre_count[sys] as f64;
            let info = LoadInfo { count, time };
            local_loads[c] = info;
            self.net.send(c, self.mgr, Msg::Load { system: spec_id, info, migrated: 0 });
            if decentralized {
                if c > 0 {
                    self.net.send(c, c - 1, Msg::Load { system: spec_id, info, migrated: 0 });
                }
                if c + 1 < n {
                    self.net.send(c, c + 1, Msg::Load { system: spec_id, info, migrated: 0 });
                }
            }
        }
        let loads: Vec<LoadInfo> = (0..n)
            .map(|c| {
                let Msg::Load { info, .. } =
                    self.net.recv(self.mgr, c).expect("deterministic schedule delivers")
                else {
                    panic!("expected load report");
                };
                info
            })
            .collect();
        if decentralized {
            // Each calculator consumes its neighbors' reports (the content
            // equals `loads`; the receive charges the communication).
            for c in 0..n {
                if c > 0 {
                    let Msg::Load { .. } =
                        self.net.recv(c, c - 1).expect("deterministic schedule delivers")
                    else {
                        panic!("expected neighbor load");
                    };
                }
                if c + 1 < n {
                    let Msg::Load { .. } =
                        self.net.recv(c, c + 1).expect("deterministic schedule delivers")
                    else {
                        panic!("expected neighbor load");
                    };
                }
            }
        }
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::LoadInformation);
        }
        loads
    }

    /// The balancing phase: centralized (§3.2.5), decentralized (§6 future
    /// work), or the plain synchronization step static balancing needs.
    fn phase_balance(&mut self, frame: u64, sys: usize, loads: &[LoadInfo], fr: &mut FrameReport) {
        match self.cfg.balance {
            BalanceMode::Dynamic(bcfg) => {
                let transfers = balance::evaluate(loads, &self.speeds, self.parity, &bcfg);
                self.parity ^= 1;
                debug_assert!(balance::validate_transfers(&transfers, self.n).is_ok());
                self.net.advance(
                    self.mgr,
                    self.cost.balance_eval_time(self.n.saturating_sub(1), self.fe_speed),
                );
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                }
                let spec_id = self.scene.systems[sys].spec.id;
                for c in 0..self.n {
                    self.net.send(
                        self.mgr,
                        c,
                        Msg::Orders { system: spec_id, orders: balance::orders_for(&transfers, c) },
                    );
                }
                for c in 0..self.n {
                    let Msg::Orders { .. } =
                        self.net.recv(c, self.mgr).expect("deterministic schedule delivers")
                    else {
                        panic!("expected orders");
                    };
                }
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingOrders);
                }
                self.execute_transfers(frame, sys, &transfers, fr, true);
            }
            BalanceMode::Decentralized(bcfg) => {
                // Every pair decides from the reports exchanged in
                // phase_loads; the computation is replicated and identical
                // on both endpoints, so no orders are needed.
                let transfers = balance::evaluate_decentralized(loads, &self.speeds, &bcfg);
                for c in 0..self.n {
                    self.net.advance(c, self.cost.balance_eval_time(2, self.speeds[c]));
                }
                if sys == 0 {
                    self.trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                }
                self.execute_transfers(frame, sys, &transfers, fr, false);
            }
            BalanceMode::Static => {
                // Without balancing the model still requires a
                // synchronization step (paper §3.2) so a fast calculator
                // cannot race a frame ahead.
                self.net.barrier(&self.calc_and_mgr);
            }
        }
    }

    /// Execute a decided transfer set: donors select particles and compute
    /// new cuts, the domain update is disseminated (via the manager when
    /// `via_manager`, else donor-broadcast), every calculator redefines its
    /// local domains, then the particles move.
    fn execute_transfers(
        &mut self,
        frame: u64,
        sys: usize,
        transfers: &[Transfer],
        fr: &mut FrameReport,
        via_manager: bool,
    ) {
        let n = self.n;
        let spec_id = self.scene.systems[sys].spec.id;

        // Donors prepare structures and compute new cuts. Decentralized
        // rounds may have one calculator donating on both sides; processing
        // transfers in boundary order keeps the donations sequential and
        // the kept-extent bookkeeping exact.
        let mut ordered: Vec<Transfer> = transfers.to_vec();
        ordered.sort_by_key(|t| t.donor.min(t.receiver));
        let mut donations: Vec<(usize, usize, Vec<Particle>)> = Vec::new();
        let mut cuts: Vec<(usize, Scalar, usize)> = Vec::new(); // (boundary, cut, donor)
        for t in &ordered {
            let donor = t.donor;
            let receiver = t.receiver;
            let amount = t.amount.min(self.calcs[donor].stores[sys].len());
            let store = &mut self.calcs[donor].stores[sys];
            let old_slice = store.slice();
            let (mut donated, sorted) =
                if receiver < donor { store.donate_low(amount) } else { store.donate_high(amount) };
            self.net.advance(
                donor,
                self.cost.sort_time(sorted, self.speeds[donor])
                    + self.cost.pack_time(donated.len(), self.speeds[donor]),
            );
            let kept = self.calcs[donor].stores[sys].extent();
            let cut = donation_cut(receiver < donor, &donated, kept, old_slice);
            // Half-open tie guard: a donated particle exactly at the cut
            // still belongs to the donor.
            if receiver < donor {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) >= cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) < cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            } else {
                let keep_back: Vec<Particle> =
                    donated.iter().filter(|p| p.position.along(AXIS) < cut).copied().collect();
                donated.retain(|p| p.position.along(AXIS) >= cut);
                self.calcs[donor].stores[sys].extend(keep_back);
            }
            let boundary = donor.min(receiver);
            cuts.push((boundary, cut, donor));
            donations.push((donor, receiver, donated));
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::PreparationOfStructures);
        }

        if via_manager {
            // Donors report cuts to the manager, which updates the
            // authoritative map and rebroadcasts (paper §3.2.5).
            for &(boundary, cut, donor) in &cuts {
                self.net.send(donor, self.mgr, Msg::NewCut { system: spec_id, boundary, cut });
            }
            for &(_, _, donor) in &cuts {
                let Msg::NewCut { boundary, cut, .. } =
                    self.net.recv(self.mgr, donor).expect("deterministic schedule delivers")
                else {
                    panic!("expected new cut");
                };
                self.mgr_domains[sys]
                    .move_cut(boundary, cut)
                    .expect("donor computed an in-range cut");
            }
            for c in 0..n {
                self.net.send(
                    self.mgr,
                    c,
                    Msg::Domains { system: spec_id, cuts: self.mgr_domains[sys].cuts().to_vec() },
                );
            }
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            for c in 0..n {
                let Msg::Domains { cuts, .. } =
                    self.net.recv(c, self.mgr).expect("deterministic schedule delivers")
                else {
                    panic!("expected domains");
                };
                let dm =
                    DomainMap::from_cuts(AXIS, cuts).expect("manager broadcasts valid domains");
                self.apply_domains(c, sys, dm);
            }
        } else {
            // Decentralized: each donor broadcasts its cut to every
            // process (manager included — it still routes creation), and
            // every process applies the cuts in boundary order.
            for &(boundary, cut, donor) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor {
                        self.net.send(donor, c, Msg::NewCut { system: spec_id, boundary, cut });
                    }
                }
            }
            // Apply locally at the donor, remotely everywhere else.
            let mut applied: Vec<(usize, Scalar)> = Vec::new();
            for &(boundary, cut, _) in &cuts {
                applied.push((boundary, cut));
            }
            for &(_, _, donor) in &cuts {
                for c in (0..n).chain([self.mgr]) {
                    if c != donor {
                        let Msg::NewCut { .. } =
                            self.net.recv(c, donor).expect("deterministic schedule delivers")
                        else {
                            panic!("expected decentralized cut broadcast");
                        };
                    }
                }
            }
            for &(boundary, cut) in &applied {
                self.mgr_domains[sys].move_cut(boundary, cut).expect("in-range decentralized cut");
            }
            let dm = self.mgr_domains[sys].clone();
            if sys == 0 && !transfers.is_empty() {
                self.trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
            }
            for c in 0..n {
                self.apply_domains(c, sys, dm.clone());
            }
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::DefinitionOfLocalDomains);
        }

        // The donations themselves.
        for (donor, receiver, donated) in donations {
            fr.balanced += (donated.len() as f64 * self.scale) as u64;
            self.net.send(
                donor,
                receiver,
                Msg::Particles { system: spec_id, batch: donated, scale: self.scale },
            );
        }
        for t in &ordered {
            let Msg::Particles { batch, .. } =
                self.net.recv(t.receiver, t.donor).expect("deterministic schedule delivers")
            else {
                panic!("expected donation");
            };
            self.net.advance(t.receiver, self.cost.pack_time(batch.len(), self.speeds[t.receiver]));
            self.calcs[t.receiver].stores[sys].extend(batch);
        }
        if sys == 0 && !transfers.is_empty() {
            self.trace.record(frame, ProtocolEvent::LoadBalanceBetweenCalculators);
        }
    }

    /// Install an updated domain map at calculator `c`, reshaping its store
    /// if its own slice changed.
    fn apply_domains(&mut self, c: usize, sys: usize, dm: DomainMap) {
        let new_slice = dm.slice(c);
        self.calcs[c].domains[sys] = dm;
        if self.calcs[c].stores[sys].slice() != new_slice {
            let len = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.exchange_check_time(len, self.speeds[c]));
            let stray = self.calcs[c].stores[sys].reshape(new_slice);
            // Out-of-space particles pool at the edge calculators
            // (owner_of clamps); they stay here until a kill action removes
            // them. In-space strays would mean a broken cut.
            debug_assert!(
                {
                    let space = self.calcs[c].domains[sys].space();
                    stray.iter().all(|p| {
                        let v = p.position.along(AXIS);
                        v < space.lo || v >= space.hi
                    })
                },
                "in-space stray after reshape: rank {c} slice {new_slice} strays {:?}",
                stray.iter().map(|p| p.position.x).collect::<Vec<_>>(),
            );
            self.calcs[c].stores[sys].extend(stray);
        }
    }

    /// Ship render payloads to the image generator.
    fn phase_ship(&mut self, frame: u64, sys: usize, fr: &mut FrameReport) {
        let spec_id = self.scene.systems[sys].spec.id;
        for c in 0..self.n {
            let count = self.calcs[c].stores[sys].len();
            self.net.advance(c, self.cost.pack_time(count, self.speeds[c]));
            self.net.send(
                c,
                self.ig,
                Msg::RenderBatch { system: spec_id, count, scale: self.scale },
            );
        }
        let mut frame_particles = 0usize;
        for c in 0..self.n {
            let Msg::RenderBatch { count, .. } =
                self.net.recv(self.ig, c).expect("deterministic schedule delivers")
            else {
                panic!("expected render batch");
            };
            frame_particles += count;
        }
        self.net.advance(
            self.ig,
            self.cost.virt(frame_particles) * self.cost.per_render / self.fe_speed,
        );
        fr.alive += (frame_particles as f64 * self.scale) as u64;
        if sys == 0 {
            self.trace.record(frame, ProtocolEvent::ParticlesToImageGenerator);
        }
    }
}

/// Compute the new domain cut after a donation (shared with the threaded
/// executor).
///
/// `low_side` is true when donating toward the *left* (lower) neighbor.
/// `kept` is the donor's remaining extent along the axis. The cut is placed
/// midway between the donated extreme and the kept extreme, falling back to
/// the old slice edge when one side is empty.
pub fn donation_cut(
    low_side: bool,
    donated: &[Particle],
    kept: Option<(Scalar, Scalar)>,
    old_slice: Interval,
) -> Scalar {
    let axis = AXIS;
    if donated.is_empty() {
        return if low_side { old_slice.lo } else { old_slice.hi };
    }
    if low_side {
        // Donor keeps [cut, hi): kept_min >= cut always holds for any cut
        // <= kept_min, and donated particles at exactly `cut` are returned
        // to the donor by the caller's tie guard.
        let donated_max =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::NEG_INFINITY, Scalar::max);
        match kept {
            Some((kept_min, _)) => 0.5 * (donated_max + kept_min),
            None => old_slice.hi,
        }
    } else {
        // Donor keeps [lo, cut): the cut must be STRICTLY above kept_max or
        // kept particles fall outside the half-open slice. When the
        // midpoint collapses onto kept_max (tied positions — e.g. a whole
        // emission cohort from a point source), fall back to the smallest
        // donated coordinate strictly above kept_max; if none exists the
        // donation degenerates and the boundary stays put (the caller's tie
        // guard returns every donated particle to the donor).
        let donated_min =
            donated.iter().map(|p| p.position.along(axis)).fold(Scalar::INFINITY, Scalar::min);
        match kept {
            Some((_, kept_max)) => {
                let mid = 0.5 * (kept_max + donated_min);
                if mid > kept_max {
                    mid
                } else {
                    let next = donated
                        .iter()
                        .map(|p| p.position.along(axis))
                        .filter(|v| *v > kept_max)
                        .fold(Scalar::INFINITY, Scalar::min);
                    if next.is_finite() {
                        next
                    } else {
                        old_slice.hi
                    }
                }
            }
            None => old_slice.lo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_math::Vec3;

    #[test]
    fn new_cut_midpoint_low_side() {
        let donated = vec![Particle::at(Vec3::new(1.0, 0.0, 0.0))];
        let cut = donation_cut(true, &donated, Some((3.0, 9.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 2.0);
    }

    #[test]
    fn new_cut_midpoint_high_side() {
        let donated = vec![Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 7.0);
    }

    #[test]
    fn new_cut_empty_donation_keeps_edges() {
        assert_eq!(donation_cut(true, &[], Some((1.0, 2.0)), Interval::new(0.0, 10.0)), 0.0);
        assert_eq!(donation_cut(false, &[], None, Interval::new(0.0, 10.0)), 10.0);
    }

    #[test]
    fn new_cut_high_side_tie_uses_next_distinct_value() {
        // kept_max == donated_min (an emission cohort with identical
        // positions was split): the cut must be strictly above kept_max.
        let donated =
            vec![Particle::at(Vec3::new(6.0, 0.0, 0.0)), Particle::at(Vec3::new(8.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert!(cut > 6.0, "cut {cut} must exceed kept_max");
        assert_eq!(cut, 8.0, "smallest strictly-greater donated value");
    }

    #[test]
    fn new_cut_high_side_full_tie_degenerates_to_old_boundary() {
        let donated = vec![Particle::at(Vec3::new(6.0, 0.0, 0.0))];
        let cut = donation_cut(false, &donated, Some((1.0, 6.0)), Interval::new(0.0, 10.0));
        assert_eq!(cut, 10.0, "no separating cut exists; boundary unchanged");
    }

    #[test]
    fn new_cut_total_donation_takes_whole_slice() {
        let donated = vec![Particle::at(Vec3::new(5.0, 0.0, 0.0))];
        // donating low with nothing kept: slice collapses to its high edge
        assert_eq!(donation_cut(true, &donated, None, Interval::new(0.0, 10.0)), 10.0);
        assert_eq!(donation_cut(false, &donated, None, Interval::new(0.0, 10.0)), 0.0);
    }
}
