//! The deterministic virtual-time executor.
//!
//! Runs the paper's full frame protocol (Figure 2) over a simulated
//! heterogeneous cluster: real particles move through real data structures,
//! while per-rank virtual clocks and the `netsim` fabric account for what
//! the compute and communication would cost on the modeled hardware. The
//! result is bit-deterministic, so every table in EXPERIMENTS.md
//! regenerates identically from the seed.
//!
//! The protocol itself lives in [`crate::protocol`]: `VirtualSim` is the
//! thin shell that builds the queue-stepped [`FaultyVirtualNet`] fabric
//! from the cluster's network model and hands it to the shared
//! [`Engine`]. The event-driven executor in
//! `psa-desim` drives the *same* engine over an event-heap fabric; the two
//! produce fingerprint-identical reports.
//!
//! Rank layout: `0..n` are calculators (one per domain slice, in slice
//! order), `n` is the manager, `n + 1` the image generator. The manager and
//! image generator live on the front-end node (node 0).
//!
//! ## Fault model
//!
//! The fabric is wrapped in a [`FaultyVirtualNet`] executing a seeded
//! [`FaultPlan`] (see `netsim::fault`): every perturbation — link delay,
//! transient send failure, calculator slowdown, stall, fail-stop crash —
//! is charged as *virtual time*, so a faulty run replays bit-identically
//! from `(seed, plan)`. A quiet plan (the default) draws no entropy and
//! adds `0.0` everywhere, leaving healthy runs byte-identical to the
//! un-instrumented executor.
//!
//! Degraded-mode protocol: transient send failures are retried with
//! exponential backoff in virtual ticks; receives from a crashed rank use a
//! bounded deadline (the wait is charged, the miss counted); the manager
//! declares a calculator dead after [`FaultPolicy::dead_after`] consecutive
//! missed load reports, confiscates its particles (counted as lost),
//! purges its in-flight queues, and collapses its domain slice toward the
//! nearest alive neighbor via the §3.2.5 `move_cut` machinery — the
//! every-round `Domains` broadcast then reassigns the slice so frames keep
//! rendering on the survivors.

use cluster_sim::{ClusterSpec, CostModel, Placement};
use netsim::{FaultPlan, FaultPolicy, FaultyVirtualNet, PlanInjector, VirtualNet};

use crate::config::RunConfig;
use crate::msg::ProtocolError;
use crate::protocol::{node_layout, Engine};
use crate::report::RunReport;
use crate::scene::Scene;
use crate::trace::Trace;

/// The virtual-time executor.
pub struct VirtualSim {
    scene: Scene,
    cfg: RunConfig,
    cluster: ClusterSpec,
    placement: Placement,
    cost: CostModel,
    trace: Trace,
    plan: Option<FaultPlan>,
    policy: FaultPolicy,
    instrument: bool,
}

impl VirtualSim {
    pub fn new(scene: Scene, cfg: RunConfig, cluster: ClusterSpec, cost: CostModel) -> Self {
        assert!(!scene.systems.is_empty(), "scene needs at least one system");
        let placement = cluster.placement();
        VirtualSim {
            scene,
            cfg,
            cluster,
            placement,
            cost,
            trace: Trace::disabled(),
            plan: None,
            policy: FaultPolicy::default(),
            instrument: false,
        }
    }

    /// Record protocol events (used by the Figure-2 test; off by default).
    pub fn with_trace(mut self) -> Self {
        self.trace = Trace::enabled();
        self
    }

    /// Record the per-phase observability trace (off by default). The
    /// recorder only *reads* virtual clocks, so an instrumented run's
    /// `RunReport::fingerprint()` is byte-identical to a bare run's — the
    /// trace lands in `RunReport::phases`.
    pub fn with_phases(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Inject the given fault plan (must cover `calculators + 2` ranks).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Override the retry/timeout/death policy (defaults are sane).
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run the animation; returns the report (including the virtual
    /// makespan used for speed-up computation), or the protocol error that
    /// ended the run early (e.g. every calculator died).
    pub fn try_run(&mut self) -> Result<RunReport, ProtocolError> {
        let n = self.placement.calculators();
        let plan = self.plan.clone().unwrap_or_else(|| FaultPlan::none(self.cfg.seed, n + 2));
        assert_eq!(
            plan.ranks(),
            n + 2,
            "fault plan must cover calculators + manager + image generator"
        );
        let (node_of, node_count) = node_layout(&self.placement);
        let net = FaultyVirtualNet::new(
            VirtualNet::new(self.cluster.net.clone(), node_of, node_count),
            PlanInjector::new(plan),
        );
        let mut engine = Engine::new(
            self.scene.clone(),
            self.cfg.clone(),
            &self.placement,
            self.cost.clone(),
            net,
            self.policy,
            std::mem::take(&mut self.trace),
            self.instrument,
        );
        let (outcome, trace) = engine.run(self.cluster.describe());
        self.trace = trace;
        outcome
    }

    /// Run the animation, panicking on a protocol failure (healthy runs and
    /// survivable fault plans never fail; use [`try_run`](Self::try_run) to
    /// observe fatal plans).
    pub fn run(&mut self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("virtual protocol run failed: {e}"),
        }
    }
}
