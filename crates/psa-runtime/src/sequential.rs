//! The sequential baseline.
//!
//! The paper computes every speed-up against "the time of the sequential
//! execution" on the best machine/compiler pair for the fabric in question
//! (E800+GCC for the Myrinet tables, Itanium+ICC for the Fast-Ethernet
//! ones). This module runs the same scene single-process — the original
//! McAllister-style loop with no domains, no exchange, no packing — and
//! charges the same cost model at the given relative speed.

use cluster_sim::CostModel;
use psa_core::kernel;
use psa_core::SubDomainStore;
use psa_math::stats::imbalance;
use psa_math::Axis;

use crate::config::RunConfig;
// The RNG streams come from the shared protocol module, so sequential and
// parallel runs simulate the identical workload by construction.
use crate::protocol::{stream, TAG_ACTIONS, TAG_CREATE};
use crate::report::{FrameReport, RunReport};
use crate::scene::Scene;

/// Run the scene sequentially on a machine of relative `speed`; returns a
/// report whose `total_time` is the baseline for speed-up computation.
pub fn run_sequential(scene: &Scene, cfg: &RunConfig, cost: &CostModel, speed: f64) -> RunReport {
    assert!(speed > 0.0);
    let n_sys = scene.systems.len();
    // The original library keeps each system's particles in one vector: a
    // single-bucket store spanning the whole space.
    let mut stores: Vec<SubDomainStore> =
        scene.systems.iter().map(|s| SubDomainStore::new(s.spec.space, Axis::X, 1)).collect();

    let mut total = 0.0f64;
    let mut frames = Vec::with_capacity(cfg.frames as usize);
    let mut strays = Vec::new(); // reused across frames: no per-frame allocation
    let mut newborn = Vec::new();
    for frame in 0..cfg.frames {
        let mut fr = FrameReport { frame, ..Default::default() };
        let mut frame_time = 0.0;
        #[allow(clippy::needless_range_loop)] // sys indexes scene + stores in parallel
        for sys in 0..n_sys {
            let setup = &scene.systems[sys];
            let spec = &setup.spec;
            // Creation.
            let mut rng_c = stream(cfg.seed, TAG_CREATE, frame, sys, 0);
            newborn.clear();
            if frame == 0 {
                newborn = spec.emit_initial(&mut rng_c);
            }
            newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng_c)));
            frame_time += cost.create_time(newborn.len(), speed);
            stores[sys].extend(newborn.drain(..));
            // Calculus. The sequential run uses the rank-1 action stream
            // (the single calculator), routed through the chunked kernel so
            // `cfg.parallel` produces the same particle state here as in the
            // parallel executors.
            let rng_a = stream(cfg.seed, TAG_ACTIONS, frame, sys, 1);
            let kr = kernel::run_actions(
                &setup.actions,
                cfg.dt,
                frame,
                rng_a,
                &mut stores[sys],
                cfg.parallel.chunk,
                cfg.parallel.workers,
            );
            frame_time += cost.weighted_work_time(kr.weighted, speed);
            // Inter-particle collision, if the scene enables it.
            if let Some(col) = scene.collision {
                use psa_core::collide::{colliding_pairs, resolve_elastic};
                let mut all = stores[sys].take_all();
                let pairs = colliding_pairs(&all, &[], col.cell);
                resolve_elastic(&mut all, &pairs, col.restitution);
                frame_time += cost.collision_time(all.len(), speed);
                stores[sys].extend(all);
            }
            // Out-of-space particles have nowhere to migrate: they stay
            // (and are usually culled by kill actions); no exchange exists.
            stores[sys].collect_leavers_into(&mut strays);
            for p in strays.drain(..) {
                stores[sys].insert(p);
            }
            fr.alive += (cost.virt(stores[sys].len())).round() as u64;
        }
        // Render every system's particles.
        let alive_real: usize = stores.iter().map(SubDomainStore::len).sum();
        frame_time += cost.render_time(alive_real, speed);
        fr.frame_time = frame_time;
        fr.imbalance = imbalance(&[1.0]);
        total += frame_time;
        frames.push(fr);
    }

    RunReport {
        label: format!("SEQ-{}", cfg.label()),
        cluster: "sequential".into(),
        calculators: 1,
        total_time: total,
        frames: frames.into_iter().filter(|f| f.frame >= cfg.warmup).collect(),
        traffic: Default::default(),
        dead_ranks: Vec::new(),
        lost_particles: 0,
        phases: None,
        recoveries: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SystemSetup;
    use psa_core::actions::{ActionList, Gravity, KillOld, MoveParticles};
    use psa_core::SystemSpec;

    fn tiny_scene() -> Scene {
        let mut spec = SystemSpec::test_spec(0);
        spec.emit_per_frame = 50;
        spec.max_age = 0.5;
        let mut s = Scene::new();
        s.add_system(SystemSetup::new(
            spec,
            ActionList::new().then(Gravity::earth()).then(KillOld::new(0.5)).then(MoveParticles),
        ));
        s
    }

    #[test]
    fn population_reaches_steady_state() {
        let scene = tiny_scene();
        let cfg = RunConfig { frames: 40, dt: 0.1, ..Default::default() };
        let r = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        // lifetime 0.5s at dt 0.1 = 5 frames × 50/frame ≈ 250-300 alive
        let last = r.frames.last().unwrap();
        assert!(last.alive >= 250 && last.alive <= 350, "alive {}", last.alive);
    }

    #[test]
    fn faster_machine_is_proportionally_faster() {
        let scene = tiny_scene();
        let cfg = RunConfig { frames: 10, dt: 0.1, ..Default::default() };
        let slow = run_sequential(&scene, &cfg, &CostModel::default(), 0.5);
        let fast = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        assert!((slow.total_time / fast.total_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let scene = tiny_scene();
        let cfg = RunConfig { frames: 8, dt: 0.1, ..Default::default() };
        let a = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        let b = run_sequential(&scene, &cfg, &CostModel::default(), 1.0);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.frames.last().unwrap().alive, b.frames.last().unwrap().alive);
    }
}
