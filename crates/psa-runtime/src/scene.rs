//! A simulation scene: particle systems, their action lists, and external
//! objects.

use std::sync::Arc;

use psa_core::actions::ActionList;
use psa_core::objects::ExternalObject;
use psa_core::{SystemId, SystemSpec};
use psa_math::{Scalar, Vec3};

/// Inter-particle collision settings (the user-pluggable procedure the
/// model's data locality preserves, paper §3.1.4). When set, calculators
/// exchange ghost slabs with their domain neighbors each frame and resolve
/// particle–particle contacts locally.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollisionSpec {
    /// Broadphase cell edge; use twice the largest particle radius.
    pub cell: Scalar,
    /// Elastic restitution in `[0, 1]`.
    pub restitution: Scalar,
}

/// One particle system plus the per-frame action list run on it
/// (the body of the paper's Algorithm 1).
#[derive(Clone)]
pub struct SystemSetup {
    pub spec: SystemSpec,
    /// Shared by every calculator; actions are stateless.
    pub actions: Arc<ActionList>,
}

impl SystemSetup {
    pub fn new(spec: SystemSpec, actions: ActionList) -> Self {
        actions.validate().expect("action list violates the model's structural rules");
        SystemSetup { spec, actions: Arc::new(actions) }
    }
}

/// The full scene: systems in creation order (their vector index is the
/// system identifier, paper §3.1.3) plus external objects replicated on
/// every process.
#[derive(Clone, Default)]
pub struct Scene {
    pub systems: Vec<SystemSetup>,
    /// External objects with display colors (rendered by the image
    /// generator, collided against by calculators via actions).
    pub objects: Vec<(ExternalObject, Vec3)>,
    /// Optional inter-particle collision (within each system).
    pub collision: Option<CollisionSpec>,
}

impl Scene {
    pub fn new() -> Self {
        Scene::default()
    }

    /// Add a system; its [`SystemId`] is its creation index, which must
    /// match `spec.id` — the paper relies on identical creation order on
    /// every process.
    pub fn add_system(&mut self, setup: SystemSetup) -> SystemId {
        let id = SystemId(self.systems.len() as u16);
        assert_eq!(setup.spec.id, id, "system id must equal its creation-order index");
        self.systems.push(setup);
        id
    }

    pub fn add_object(&mut self, obj: ExternalObject, color: Vec3) {
        self.objects.push((obj, color));
    }

    /// Enable inter-particle collision with the given broadphase cell and
    /// restitution.
    pub fn with_collision(mut self, cell: Scalar, restitution: Scalar) -> Self {
        assert!(cell > 0.0 && (0.0..=1.0).contains(&restitution));
        self.collision = Some(CollisionSpec { cell, restitution });
        self
    }

    pub fn system_count(&self) -> usize {
        self.systems.len()
    }

    /// Total particles emitted per frame across systems (manager work).
    pub fn emission_per_frame(&self) -> usize {
        self.systems.iter().map(|s| s.spec.emit_per_frame).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_core::actions::{Gravity, MoveParticles};

    fn setup(id: u16) -> SystemSetup {
        SystemSetup::new(
            SystemSpec::test_spec(id),
            ActionList::new().then(Gravity::earth()).then(MoveParticles),
        )
    }

    #[test]
    fn creation_order_assigns_ids() {
        let mut s = Scene::new();
        assert_eq!(s.add_system(setup(0)), SystemId(0));
        assert_eq!(s.add_system(setup(1)), SystemId(1));
        assert_eq!(s.system_count(), 2);
    }

    #[test]
    #[should_panic(expected = "creation-order")]
    fn wrong_id_panics() {
        let mut s = Scene::new();
        s.add_system(setup(5));
    }

    #[test]
    #[should_panic(expected = "structural rules")]
    fn invalid_action_list_rejected() {
        let _ = SystemSetup::new(
            SystemSpec::test_spec(0),
            ActionList::new().then(MoveParticles).then(MoveParticles),
        );
    }

    #[test]
    fn emission_sums_systems() {
        let mut s = Scene::new();
        s.add_system(setup(0));
        s.add_system(setup(1));
        assert_eq!(s.emission_per_frame(), 200);
    }
}
