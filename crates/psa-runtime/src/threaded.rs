//! SPMD executor over real host threads.
//!
//! Runs the identical frame protocol as [`crate::virtual_exec`] but with
//! every role on its own OS thread, one mpsc channel per (sender, receiver)
//! pair, wall-clock timing, and a real image generator that rasterizes
//! frames (optionally to PPM files). This is the executable demonstration
//! that the model parallelizes — the virtual executor is the instrument
//! that reproduces the paper's cluster numbers.
//!
//! The role bodies themselves — `crate::protocol::calculator_main`,
//! `crate::protocol::manager_main`,
//! `crate::protocol::image_generator_main` — live in the shared protocol
//! module next to the virtual engine, so all executors evolve one protocol
//! implementation. This file owns only what is thread-specific: spawning,
//! joining, error aggregation, and the render sink.
//!
//! Protocol failures are values, not panics: every role returns
//! [`ProtocolError`] and [`run_threaded`] surfaces the most specific error
//! after joining all threads. With the `strict-invariants` feature, each
//! role additionally checks particle conservation across the exchange, the
//! domain-partition property after every rebalance, and the Figure-2 order
//! of its recorded protocol trace.

// psa-verify: allow(wall-clock) — this executor measures real elapsed time
// by design (the virtual executor owns virtual time).
// psa-verify: allow(thread-spawn) — the role threads (calculators, manager,
// image generator) ARE this executor's architecture; compute-phase worker
// spawns are confined to psa_core::kernel.
use std::path::PathBuf;
use std::thread;

use netsim::ThreadNet;
use psa_core::DomainMap;
use psa_math::Axis;
use psa_render::{Camera, SplatConfig};
use psa_trace::{Recorder, TraceReport};

use crate::config::RunConfig;
use crate::msg::ProtocolError;
use crate::protocol::{calculator_main, image_generator_main, manager_main, space_for};
use crate::report::RunReport;
use crate::scene::Scene;

/// Where and how the image generator should rasterize.
#[derive(Clone, Debug)]
pub struct RenderSink {
    pub camera: Camera,
    pub splat: SplatConfig,
    /// Directory for PPM frames; `None` renders in memory only (frames are
    /// still rasterized so the work is real).
    pub out_dir: Option<PathBuf>,
    pub prefix: String,
    /// Background color.
    pub background: psa_math::Vec3,
    /// Render orientation-aligned streaks of `(length, steps)` instead of
    /// dots (uses the paper's mandatory orientation property).
    pub streaks: Option<(f32, usize)>,
}

impl RenderSink {
    /// In-memory rendering with an orthographic camera over the space.
    pub fn headless(camera: Camera) -> Self {
        RenderSink {
            camera,
            splat: SplatConfig::default(),
            out_dir: None,
            prefix: "frame".into(),
            background: psa_math::Vec3::new(0.02, 0.02, 0.05),
            streaks: None,
        }
    }
}

/// Run the scene on `n` calculator threads (+ manager + image generator).
/// Returns the wall-clock report; `sink` controls real rasterization.
///
/// # Panics
/// Panics if `n == 0` — a run with no calculators is a caller bug. All
/// runtime failures (dead peers, out-of-order messages, invariant
/// violations, render I/O) come back as [`ProtocolError`].
pub fn run_threaded(
    scene: &Scene,
    cfg: &RunConfig,
    n: usize,
    sink: Option<RenderSink>,
) -> Result<RunReport, ProtocolError> {
    run_threaded_traced(scene, cfg, n, sink, false)
}

/// [`run_threaded`] with optional per-phase instrumentation: when
/// `instrument` is true every role carries a wall-clock [`Recorder`] and
/// the merged trace lands in `RunReport::phases`. Instrumentation only
/// *reads* the endpoint epoch clock — it sends no messages and touches no
/// protocol state, so the run's output (frame reports, checksums) is
/// unchanged. Timings use the wall clock and are NOT reproducible across
/// runs; compare frame checksums, not phase times.
pub fn run_threaded_traced(
    scene: &Scene,
    cfg: &RunConfig,
    n: usize,
    sink: Option<RenderSink>,
    instrument: bool,
) -> Result<RunReport, ProtocolError> {
    assert!(n >= 1);
    // The threaded executor runs every balancing strategy manager-mediated
    // over the Figure-2 per-system schedule: decentralized strategies make
    // the same per-round decisions, but their transfers still travel the
    // Orders/NewCut/Domains round-trip (gossip topology is a
    // virtual-executor timing study; here time is real wall clock anyway).
    let n_sys = scene.systems.len();
    let endpoints = ThreadNet::build::<crate::msg::Msg>(n + 2);
    let started = std::time::Instant::now();

    let initial_domains: Vec<DomainMap> =
        (0..n_sys).map(|s| DomainMap::split_even(space_for(scene, cfg, s), Axis::X, n)).collect();

    let mut handles = Vec::new();
    let mut eps = endpoints.into_iter();

    // ---- Calculator threads --------------------------------------------
    for c in 0..n {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        handles.push(thread::spawn(move || {
            calculator_main(ep, c, n, &scene, &cfg, domains0, instrument)
        }));
    }

    // ---- Manager thread -------------------------------------------------
    let mgr_handle = {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        thread::spawn(move || manager_main(ep, n, &scene, &cfg, domains0, instrument))
    };

    // ---- Image generator thread ------------------------------------------
    let ig_handle = {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        thread::spawn(move || image_generator_main(ep, n, &scene, &cfg, sink, instrument))
    };

    // Join every role. If one role fails mid-protocol its endpoints drop
    // and the peers unblock with Transport errors; prefer the most specific
    // (non-transport) error when reporting.
    let calc_results: Vec<Result<Recorder, ProtocolError>> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "calculator" })))
        .collect();
    let mgr_result =
        mgr_handle.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "manager" }));
    let ig_result =
        ig_handle.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "image generator" }));

    let mut first_transport: Option<ProtocolError> = None;
    let mut first_specific: Option<ProtocolError> = None;
    let mut note = |e: ProtocolError| match e {
        ProtocolError::Transport(_) => {
            first_transport.get_or_insert(e);
        }
        other => {
            first_specific.get_or_insert(other);
        }
    };
    let mut recorders: Vec<Recorder> = Vec::with_capacity(n + 2);
    for r in calc_results {
        match r {
            Ok(rec) => recorders.push(rec),
            Err(e) => note(e),
        }
    }
    let mgr_frames = match mgr_result {
        Ok((frames, rec)) => {
            recorders.push(rec);
            Some(frames)
        }
        Err(e) => {
            note(e);
            None
        }
    };
    let ig_frames = match ig_result {
        Ok((v, rec)) => {
            recorders.push(rec);
            Some(v)
        }
        Err(e) => {
            note(e);
            None
        }
    };
    if let Some(e) = first_specific.or(first_transport) {
        return Err(e);
    }
    let mut frames = mgr_frames.expect("no error recorded implies manager succeeded");
    let rendered = ig_frames.expect("no error recorded implies image generator succeeded");
    // Merge IG-side alive counts + checksums into the manager's reports.
    for (fr, (alive, checksum)) in frames.iter_mut().zip(rendered) {
        fr.alive = alive;
        fr.checksum = checksum;
    }

    // Merge per-role traces (each role only wrote its own rank's rows).
    let parts: Vec<TraceReport> = recorders.into_iter().filter_map(Recorder::finish).collect();
    let phases = TraceReport::merge(&parts);

    let total = started.elapsed().as_secs_f64();
    Ok(RunReport {
        label: format!("THR-{}", cfg.label()),
        cluster: format!("{n} host threads"),
        calculators: n,
        total_time: total,
        frames: frames.into_iter().filter(|f| f.frame >= cfg.warmup).collect(),
        traffic: Default::default(),
        dead_ranks: Vec::new(),
        lost_particles: 0,
        phases,
        recoveries: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BalanceMode, LoadMetric};
    use crate::msg::Msg;
    use crate::protocol::recv_within;
    use crate::scene::SystemSetup;
    use psa_core::actions::{ActionList, Gravity, KillOld, MoveParticles, RandomAccel};
    use psa_core::SystemSpec;
    use std::time::Duration;

    fn scene() -> Scene {
        let mut spec = SystemSpec::test_spec(0);
        spec.emit_per_frame = 200;
        spec.max_age = 1.0;
        let mut s = Scene::new();
        s.add_system(SystemSetup::new(
            spec,
            ActionList::new()
                .then(Gravity::earth())
                .then(RandomAccel::new(2.0))
                .then(KillOld::new(1.0))
                .then(MoveParticles),
        ));
        s
    }

    #[test]
    fn threaded_run_completes_and_counts() {
        let cfg = RunConfig { frames: 6, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        assert_eq!(r.calculators, 3);
        assert_eq!(r.frames.len(), 6);
        assert!(r.total_time > 0.0);
        // population grows 200/frame until age-out
        let alive = r.frames.last().unwrap().alive;
        assert!((1000..=1400).contains(&alive), "alive {alive}");
    }

    #[test]
    fn threaded_static_vs_dynamic_both_work() {
        for balance in [BalanceMode::Static, BalanceMode::dynamic()] {
            let cfg = RunConfig { frames: 4, dt: 0.1, balance, ..Default::default() };
            let r = run_threaded(&scene(), &cfg, 2, None).expect("clean run");
            assert_eq!(r.frames.len(), 4);
        }
    }

    #[test]
    fn threaded_single_calculator_degenerates_gracefully() {
        let cfg = RunConfig { frames: 3, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 1, None).expect("clean run");
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.frames.last().unwrap().migrated, 0);
    }

    #[test]
    fn checksums_are_computed_per_frame() {
        let cfg = RunConfig { frames: 4, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 2, None).expect("clean run");
        // Populated frames hash to something; frames differ.
        assert!(r.frames.iter().all(|f| f.checksum != 0));
        assert_ne!(r.frames[0].checksum, r.frames[3].checksum);
    }

    #[test]
    fn silent_peer_surfaces_as_typed_timeout_with_context() {
        let mut eps = ThreadNet::build::<Msg>(2).into_iter();
        let e0 = eps.next().expect("two endpoints");
        let _e1 = eps.next().expect("two endpoints");
        let err = recv_within(&e0, 1, Duration::from_millis(5), "calculator", 0, 7)
            .expect_err("nobody ever sends");
        assert_eq!(err, ProtocolError::Timeout { role: "calculator", rank: 0, frame: 7, peer: 1 });
        assert!(err.to_string().contains("timed out waiting for rank 1"));
    }

    #[test]
    fn deterministic_load_metric_makes_dlb_reproducible() {
        let cfg = RunConfig {
            frames: 5,
            dt: 0.1,
            load_metric: LoadMetric::CountProportional,
            ..Default::default()
        };
        let a = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        let b = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        let ka: Vec<u64> = a.frames.iter().map(|f| f.checksum).collect();
        let kb: Vec<u64> = b.frames.iter().map(|f| f.checksum).collect();
        assert_eq!(ka, kb);
    }
}
