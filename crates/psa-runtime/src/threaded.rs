//! SPMD executor over real host threads.
//!
//! Runs the identical frame protocol as [`crate::virtual_exec`] but with
//! every role on its own OS thread, one mpsc channel per (sender, receiver)
//! pair, wall-clock timing, and a real image generator that rasterizes
//! frames (optionally to PPM files). This is the executable demonstration
//! that the model parallelizes — the virtual executor is the instrument
//! that reproduces the paper's cluster numbers.
//!
//! Protocol failures are values, not panics: every role returns
//! [`ProtocolError`] and [`run_threaded`] surfaces the most specific error
//! after joining all threads. With the `strict-invariants` feature, each
//! role additionally checks particle conservation across the exchange, the
//! domain-partition property after every rebalance, and the Figure-2 order
//! of its recorded protocol trace.

// psa-verify: allow(wall-clock) — this executor measures real elapsed time
// by design (the virtual executor owns virtual time).
// psa-verify: allow(thread-spawn) — the role threads (calculators, manager,
// image generator) ARE this executor's architecture; compute-phase worker
// spawns are confined to psa_core::kernel.
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use netsim::{ThreadEndpoint, ThreadNet, TransportError};
use psa_core::invariants::{self, StateHash};
use psa_core::kernel;
use psa_core::{DomainMap, Particle, SubDomainStore};
use psa_math::stats::imbalance;
use psa_math::{Axis, Interval, Rng64};
use psa_render::image::{frame_filename, write_ppm};
use psa_render::{
    render_objects, render_particles, render_streaks, Camera, Framebuffer, SplatConfig,
};
use psa_trace::{ClockKind, Counter, Phase, Recorder, TraceReport};

use crate::balance::{self, LoadInfo};
use crate::config::{BalanceMode, LoadMetric, RunConfig, SpaceMode};
use crate::msg::{Msg, ProtocolError};
use crate::report::{FrameReport, RunReport};
use crate::scene::Scene;
use crate::trace::{figure2_passes, ProtocolEvent, Trace};

const TAG_CREATE: u64 = 0xC0;
const TAG_ACTIONS: u64 = 0xAC;

fn stream(seed: u64, tag: u64, frame: u64, sys: usize, rank: usize) -> Rng64 {
    Rng64::new(seed).split(tag).split(frame).split(sys as u64).split(rank as u64)
}

/// Where and how the image generator should rasterize.
#[derive(Clone, Debug)]
pub struct RenderSink {
    pub camera: Camera,
    pub splat: SplatConfig,
    /// Directory for PPM frames; `None` renders in memory only (frames are
    /// still rasterized so the work is real).
    pub out_dir: Option<PathBuf>,
    pub prefix: String,
    /// Background color.
    pub background: psa_math::Vec3,
    /// Render orientation-aligned streaks of `(length, steps)` instead of
    /// dots (uses the paper's mandatory orientation property).
    pub streaks: Option<(f32, usize)>,
}

impl RenderSink {
    /// In-memory rendering with an orthographic camera over the space.
    pub fn headless(camera: Camera) -> Self {
        RenderSink {
            camera,
            splat: SplatConfig::default(),
            out_dir: None,
            prefix: "frame".into(),
            background: psa_math::Vec3::new(0.02, 0.02, 0.05),
            streaks: None,
        }
    }
}

fn space_for(scene: &Scene, cfg: &RunConfig, sys: usize) -> Interval {
    match cfg.space {
        SpaceMode::Finite => scene.systems[sys].spec.space,
        SpaceMode::Infinite => Interval::INFINITE,
    }
}

/// Bounded protocol receive: a silent peer surfaces as a typed
/// [`ProtocolError::Timeout`] carrying role/rank/frame context instead of
/// blocking the executor forever on a lost thread.
fn recv_within(
    ep: &ThreadEndpoint<Msg>,
    from: usize,
    deadline: Duration,
    role: &'static str,
    rank: usize,
    frame: u64,
) -> Result<Msg, ProtocolError> {
    match ep.recv_deadline(from, deadline) {
        Ok(m) => Ok(m),
        Err(TransportError::Timeout { .. }) => {
            Err(ProtocolError::Timeout { role, rank, frame, peer: from })
        }
        Err(e) => Err(e.into()),
    }
}

/// Expect a specific message kind within the deadline; anything else is a
/// protocol violation.
macro_rules! expect_msg {
    ($ep:expr, $deadline:expr, $from:expr, $role:expr, $rank:expr, $frame:expr, $pat:pat => $out:expr, $want:expr) => {
        match recv_within(&$ep, $from, $deadline, $role, $rank, $frame)? {
            $pat => $out,
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    role: $role,
                    rank: $rank,
                    frame: $frame,
                    expected: $want,
                    got: other.kind(),
                })
            }
        }
    };
}

/// Run the scene on `n` calculator threads (+ manager + image generator).
/// Returns the wall-clock report; `sink` controls real rasterization.
///
/// # Panics
/// Panics if `n == 0` — a run with no calculators is a caller bug. All
/// runtime failures (dead peers, out-of-order messages, invariant
/// violations, render I/O) come back as [`ProtocolError`].
pub fn run_threaded(
    scene: &Scene,
    cfg: &RunConfig,
    n: usize,
    sink: Option<RenderSink>,
) -> Result<RunReport, ProtocolError> {
    run_threaded_traced(scene, cfg, n, sink, false)
}

/// [`run_threaded`] with optional per-phase instrumentation: when
/// `instrument` is true every role carries a wall-clock [`Recorder`] and
/// the merged trace lands in `RunReport::phases`. Instrumentation only
/// *reads* the endpoint epoch clock — it sends no messages and touches no
/// protocol state, so the run's output (frame reports, checksums) is
/// unchanged. Timings use the wall clock and are NOT reproducible across
/// runs; compare frame checksums, not phase times.
pub fn run_threaded_traced(
    scene: &Scene,
    cfg: &RunConfig,
    n: usize,
    sink: Option<RenderSink>,
    instrument: bool,
) -> Result<RunReport, ProtocolError> {
    assert!(n >= 1);
    // The threaded executor implements the centralized protocol with the
    // Figure-2 per-system schedule; the decentralized variant and batched
    // schedule are virtual-executor studies (they change timing, which here
    // is real wall clock anyway).
    let cfg = &{
        let mut c = cfg.clone();
        if let BalanceMode::Decentralized(b) = c.balance {
            c.balance = BalanceMode::Dynamic(b);
        }
        c
    };
    let n_sys = scene.systems.len();
    let endpoints = ThreadNet::build::<Msg>(n + 2);
    let started = std::time::Instant::now();

    let initial_domains: Vec<DomainMap> =
        (0..n_sys).map(|s| DomainMap::split_even(space_for(scene, cfg, s), Axis::X, n)).collect();

    let mut handles = Vec::new();
    let mut eps = endpoints.into_iter();

    // ---- Calculator threads --------------------------------------------
    for c in 0..n {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        handles.push(thread::spawn(move || {
            calculator_main(ep, c, n, &scene, &cfg, domains0, instrument)
        }));
    }

    // ---- Manager thread -------------------------------------------------
    let mgr_handle = {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        thread::spawn(move || manager_main(ep, n, &scene, &cfg, domains0, instrument))
    };

    // ---- Image generator thread ------------------------------------------
    let ig_handle = {
        let ep = eps.next().expect("fabric built with n+2 endpoints");
        let scene = scene.clone();
        let cfg = cfg.clone();
        thread::spawn(move || image_generator_main(ep, n, &scene, &cfg, sink, instrument))
    };

    // Join every role. If one role fails mid-protocol its endpoints drop
    // and the peers unblock with Transport errors; prefer the most specific
    // (non-transport) error when reporting.
    let calc_results: Vec<Result<Recorder, ProtocolError>> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "calculator" })))
        .collect();
    let mgr_result =
        mgr_handle.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "manager" }));
    let ig_result =
        ig_handle.join().unwrap_or(Err(ProtocolError::WorkerPanic { role: "image generator" }));

    let mut first_transport: Option<ProtocolError> = None;
    let mut first_specific: Option<ProtocolError> = None;
    let mut note = |e: ProtocolError| match e {
        ProtocolError::Transport(_) => {
            first_transport.get_or_insert(e);
        }
        other => {
            first_specific.get_or_insert(other);
        }
    };
    let mut recorders: Vec<Recorder> = Vec::with_capacity(n + 2);
    for r in calc_results {
        match r {
            Ok(rec) => recorders.push(rec),
            Err(e) => note(e),
        }
    }
    let mgr_frames = match mgr_result {
        Ok((frames, rec)) => {
            recorders.push(rec);
            Some(frames)
        }
        Err(e) => {
            note(e);
            None
        }
    };
    let ig_frames = match ig_result {
        Ok((v, rec)) => {
            recorders.push(rec);
            Some(v)
        }
        Err(e) => {
            note(e);
            None
        }
    };
    if let Some(e) = first_specific.or(first_transport) {
        return Err(e);
    }
    let mut frames = mgr_frames.expect("no error recorded implies manager succeeded");
    let rendered = ig_frames.expect("no error recorded implies image generator succeeded");
    // Merge IG-side alive counts + checksums into the manager's reports.
    for (fr, (alive, checksum)) in frames.iter_mut().zip(rendered) {
        fr.alive = alive;
        fr.checksum = checksum;
    }

    // Merge per-role traces (each role only wrote its own rank's rows).
    let parts: Vec<TraceReport> = recorders.into_iter().filter_map(Recorder::finish).collect();
    let phases = TraceReport::merge(&parts);

    let total = started.elapsed().as_secs_f64();
    Ok(RunReport {
        label: format!("THR-{}", cfg.label()),
        cluster: format!("{n} host threads"),
        calculators: n,
        total_time: total,
        frames: frames.into_iter().filter(|f| f.frame >= cfg.warmup).collect(),
        traffic: Default::default(),
        dead_ranks: Vec::new(),
        lost_particles: 0,
        phases,
    })
}

/// Charge the wall-clock interval since `*last` to `phase` and reset the
/// mark. The single timing primitive all three roles share: it only reads
/// the endpoint's epoch clock, so instrumentation cannot perturb protocol
/// state. A disabled recorder skips even the clock read.
fn mark(
    rec: &mut Recorder,
    last: &mut f64,
    ep: &ThreadEndpoint<Msg>,
    frame: u64,
    rank: usize,
    phase: Phase,
) {
    if !rec.is_enabled() {
        return;
    }
    let now = ep.now();
    rec.phase(frame, rank, phase, (now - *last).max(0.0));
    *last = now;
}

/// Flush the endpoint's sent-traffic delta since `mark` into the frame's
/// message/byte counters; returns the new mark.
fn flush_traffic(
    rec: &mut Recorder,
    ep: &ThreadEndpoint<Msg>,
    frame: u64,
    prev: netsim::TrafficStats,
) -> netsim::TrafficStats {
    if !rec.is_enabled() {
        return prev;
    }
    let now = ep.sent_stats();
    rec.add(frame, Counter::Messages, now.messages - prev.messages);
    rec.add(frame, Counter::PayloadBytes, now.payload_bytes - prev.payload_bytes);
    now
}

fn calculator_main(
    ep: ThreadEndpoint<Msg>,
    c: usize,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
    instrument: bool,
) -> Result<Recorder, ProtocolError> {
    let mgr = n;
    let ig = n + 1;
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut stores: Vec<SubDomainStore> = (0..n_sys)
        .map(|s| SubDomainStore::new(domains[s].slice(c), Axis::X, cfg.buckets))
        .collect();
    let mut trace = if invariants::ENABLED { Trace::enabled() } else { Trace::disabled() };
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut last = ep.now();
    let mut traffic_mark = ep.sent_stats();
    // Hot-path scratch, reused every frame: no steady-state allocation in
    // the exchange staging.
    let mut leavers: Vec<Particle> = Vec::new();
    let mut per_dest: Vec<Vec<Particle>> = (0..n).map(|_| Vec::new()).collect();

    for frame in 0..cfg.frames {
        for sys in 0..n_sys {
            let setup = &scene.systems[sys];
            // Creation: receive batch + EOT.
            let batch = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                Msg::Particles { batch, .. } => batch, "Particles");
            expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                Msg::EndOfTransmission { .. } => (), "EndOfTransmission");
            stores[sys].extend(batch);
            trace.record(frame, ProtocolEvent::AdditionToLocalSet);

            // Calculus, through the chunked kernel (legacy serial stream
            // when cfg.parallel.chunk == 0).
            let t0 = ep.now();
            let rng = stream(cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let pre = stores[sys].len().max(1);
            let kr = kernel::run_actions(
                &setup.actions,
                cfg.dt,
                frame,
                rng,
                &mut stores[sys],
                cfg.parallel.chunk,
                cfg.parallel.workers,
            );
            let compute = ep.now() - t0;
            trace.record(frame, ProtocolEvent::Calculus);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Compute);
            rec.add(frame, Counter::ComputeChunks, kr.chunks);

            // Exchange. `leavers`/`per_dest` are frame-loop scratch; only
            // the cross-thread sends allocate (the message owns its batch).
            let before_exchange = stores[sys].len();
            stores[sys].collect_leavers_into(&mut leavers);
            let migrated = leavers.len();
            for p in leavers.drain(..) {
                let owner = domains[sys].owner_of(p.position.x);
                per_dest[owner].push(p);
            }
            stores[sys].extend(per_dest[c].drain(..));
            let mut outgoing = 0usize;
            for (d, dest) in per_dest.iter_mut().enumerate() {
                if d != c {
                    outgoing += dest.len();
                    // Not `mem::take`: the message must own an exact-sized
                    // batch anyway, and draining keeps the staging spine's
                    // warmed capacity for the next frame.
                    #[allow(clippy::drain_collect)]
                    let batch: Vec<Particle> = dest.drain(..).collect();
                    ep.send(d, Msg::Particles { system: setup.spec.id, batch, scale: 1.0 })?;
                }
            }
            let mut incoming = 0usize;
            for d in 0..n {
                if d == c {
                    continue;
                }
                let batch = expect_msg!(ep, deadline, d, "calculator", c, frame,
                    Msg::Particles { batch, .. } => batch, "Particles");
                incoming += batch.len();
                stores[sys].extend(batch);
            }
            trace.record(frame, ProtocolEvent::ParticleExchange);
            if invariants::ENABLED {
                invariants::check_exchange_conservation(
                    frame,
                    sys,
                    c,
                    before_exchange,
                    outgoing,
                    incoming,
                    stores[sys].len(),
                )?;
                // Conservation balances even when a NaN position has put a
                // particle beyond every slice; reject the corruption itself.
                invariants::check_finite_positions(frame, sys, c, stores[sys].iter())?;
            }
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Exchange);

            // Load report (time rescaled to post-exchange count, §3.2.4).
            let count = stores[sys].len();
            let time = match cfg.load_metric {
                LoadMetric::WallClock => compute * count as f64 / pre as f64,
                LoadMetric::CountProportional => count as f64,
            };
            ep.send(
                mgr,
                Msg::Load { system: setup.spec.id, info: LoadInfo { count, time }, migrated },
            )?;
            trace.record(frame, ProtocolEvent::LoadInformation);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::LoadReport);

            // Balancing.
            if cfg.balance.is_dynamic() {
                let orders = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                    Msg::Orders { orders, .. } => orders, "Orders");
                let mut outgoing: Option<(usize, Vec<Particle>)> = None;
                for o in &orders {
                    match *o {
                        balance::Order::Send { to, amount } => {
                            let old_slice = stores[sys].slice();
                            let (mut donated, _sorted) = if to < c {
                                stores[sys].donate_low(amount)
                            } else {
                                stores[sys].donate_high(amount)
                            };
                            let kept = stores[sys].extent();
                            let cut = crate::virtual_exec::donation_cut(
                                to < c,
                                &donated,
                                kept,
                                old_slice,
                            );
                            // half-open tie guard
                            if to < c {
                                let back: Vec<Particle> = donated
                                    .iter()
                                    .filter(|p| p.position.x >= cut)
                                    .copied()
                                    .collect();
                                donated.retain(|p| p.position.x < cut);
                                stores[sys].extend(back);
                            } else {
                                let back: Vec<Particle> = donated
                                    .iter()
                                    .filter(|p| p.position.x < cut)
                                    .copied()
                                    .collect();
                                donated.retain(|p| p.position.x >= cut);
                                stores[sys].extend(back);
                            }
                            ep.send(
                                mgr,
                                Msg::NewCut { system: setup.spec.id, boundary: c.min(to), cut },
                            )?;
                            outgoing = Some((to, donated));
                        }
                        balance::Order::Receive { .. } => {}
                    }
                }
                if !orders.is_empty() {
                    trace.record(frame, ProtocolEvent::PreparationOfStructures);
                }
                // Everyone receives the rebroadcast domains.
                let cuts = expect_msg!(ep, deadline, mgr, "calculator", c, frame,
                    Msg::Domains { cuts, .. } => cuts, "Domains");
                let dm =
                    DomainMap::from_cuts(Axis::X, cuts).map_err(|e| ProtocolError::Domain {
                        role: "calculator",
                        rank: c,
                        frame,
                        detail: format!("{e:?}"),
                    })?;
                if invariants::ENABLED {
                    invariants::check_partition(frame, sys, space_for(scene, cfg, sys), &dm)?;
                }
                let new_slice = dm.slice(c);
                domains[sys] = dm;
                trace.record(frame, ProtocolEvent::DefinitionOfLocalDomains);
                if stores[sys].slice() != new_slice {
                    let stray = stores[sys].reshape(new_slice);
                    stores[sys].extend(stray);
                }
                // Donations move only after the new domains are in force.
                let mut transferred = false;
                if let Some((to, donated)) = outgoing {
                    transferred = true;
                    ep.send(
                        to,
                        Msg::Particles { system: setup.spec.id, batch: donated, scale: 1.0 },
                    )?;
                }
                for o in &orders {
                    if let balance::Order::Receive { from } = *o {
                        transferred = true;
                        let batch = expect_msg!(ep, deadline, from, "calculator", c, frame,
                            Msg::Particles { batch, .. } => batch, "Particles");
                        stores[sys].extend(batch);
                    }
                }
                if transferred {
                    trace.record(frame, ProtocolEvent::LoadBalanceBetweenCalculators);
                }
            }
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Balance);

            // Ship the frame to the image generator.
            let batch: Vec<Particle> = stores[sys].iter().copied().collect();
            ep.send(ig, Msg::RenderParticles { system: setup.spec.id, batch })?;
            trace.record(frame, ProtocolEvent::ParticlesToImageGenerator);
            mark(&mut rec, &mut last, &ep, frame, c, Phase::Ship);
        }
        if invariants::ENABLED {
            let events = trace.frame(frame);
            if figure2_passes(&events) != n_sys {
                return Err(ProtocolError::OrderBroken {
                    role: "calculator",
                    rank: c,
                    frame,
                    detail: format!("{events:?}"),
                });
            }
        }
        traffic_mark = flush_traffic(&mut rec, &ep, frame, traffic_mark);
    }
    Ok(rec)
}

fn manager_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
    instrument: bool,
) -> Result<(Vec<FrameReport>, Recorder), ProtocolError> {
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut parity = 0usize;
    let mut frames = Vec::with_capacity(cfg.frames as usize);
    let mut last = ep.now();
    let mut trace = if invariants::ENABLED { Trace::enabled() } else { Trace::disabled() };
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut phase_mark = ep.now();
    let mut traffic_mark = ep.sent_stats();
    // Frame-loop scratch: creation staging reuses these across frames.
    let mut newborn: Vec<Particle> = Vec::new();
    let mut batches: Vec<Vec<Particle>> = (0..n).map(|_| Vec::new()).collect();

    for frame in 0..cfg.frames {
        let mut fr = FrameReport { frame, ..Default::default() };
        let mut orders_issued = 0u64;
        for sys in 0..n_sys {
            let spec = &scene.systems[sys].spec;
            // Creation.
            let mut rng = stream(cfg.seed, TAG_CREATE, frame, sys, 0);
            newborn.clear();
            if frame == 0 {
                newborn = spec.emit_initial(&mut rng);
            }
            newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng)));
            for p in newborn.drain(..) {
                batches[domains[sys].owner_of(p.position.x)].push(p);
            }
            for (c, staged) in batches.iter_mut().enumerate() {
                // Same rationale as the calculator's exchange sends: drain
                // keeps the staging capacity, the message owns its batch.
                #[allow(clippy::drain_collect)]
                let batch: Vec<Particle> = staged.drain(..).collect();
                ep.send(c, Msg::Particles { system: spec.id, batch, scale: 1.0 })?;
                ep.send(c, Msg::EndOfTransmission { system: spec.id })?;
            }
            trace.record(frame, ProtocolEvent::ParticleCreation);
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::Compute);

            // Load reports.
            let mut loads = Vec::with_capacity(n);
            for c in 0..n {
                let (info, migrated) = expect_msg!(ep, deadline, c, "manager", n, frame,
                    Msg::Load { info, migrated, .. } => (info, migrated), "Load");
                fr.migrated += migrated as u64;
                fr.migration_bytes += (migrated * psa_core::WIRE_BYTES) as u64;
                loads.push(info);
            }
            let counts: Vec<f64> = loads.iter().map(|l| l.count as f64).collect();
            fr.imbalance = fr.imbalance.max(imbalance(&counts));
            trace.record(frame, ProtocolEvent::LoadInformation);
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::LoadReport);

            // Balancing.
            if let BalanceMode::Dynamic(bcfg) = cfg.balance {
                let speeds = vec![1.0; n]; // host threads are homogeneous
                let transfers = balance::evaluate(&loads, &speeds, parity, &bcfg);
                parity ^= 1;
                orders_issued += transfers.len() as u64;
                trace.record(frame, ProtocolEvent::LoadBalancingEvaluation);
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Orders { system: spec.id, orders: balance::orders_for(&transfers, c) },
                    )?;
                }
                trace.record(frame, ProtocolEvent::LoadBalancingOrders);
                for t in &transfers {
                    let (boundary, cut) = expect_msg!(ep, deadline, t.donor, "manager", n, frame,
                        Msg::NewCut { boundary, cut, .. } => (boundary, cut), "NewCut");
                    domains[sys].move_cut(boundary, cut).map_err(|e| ProtocolError::Domain {
                        role: "manager",
                        rank: n,
                        frame,
                        detail: format!("{e:?}"),
                    })?;
                    fr.balanced += t.amount as u64;
                }
                if invariants::ENABLED {
                    invariants::check_partition(
                        frame,
                        sys,
                        space_for(scene, cfg, sys),
                        &domains[sys],
                    )?;
                }
                if !transfers.is_empty() {
                    trace.record(frame, ProtocolEvent::NewDimensionsAndDomains);
                }
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Domains { system: spec.id, cuts: domains[sys].cuts().to_vec() },
                    )?;
                }
            }
            mark(&mut rec, &mut phase_mark, &ep, frame, n, Phase::Balance);
        }
        if invariants::ENABLED {
            let events = trace.frame(frame);
            if figure2_passes(&events) != n_sys {
                return Err(ProtocolError::OrderBroken {
                    role: "manager",
                    rank: n,
                    frame,
                    detail: format!("{events:?}"),
                });
            }
        }
        let now = ep.now();
        fr.frame_time = now - last;
        last = now;
        if rec.is_enabled() {
            rec.add(frame, Counter::Migrated, fr.migrated);
            rec.add(frame, Counter::MigrationBytes, fr.migration_bytes);
            rec.add(frame, Counter::BalanceOrders, orders_issued);
            traffic_mark = flush_traffic(&mut rec, &ep, frame, traffic_mark);
        }
        frames.push(fr);
    }
    Ok((frames, rec))
}

fn image_generator_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    sink: Option<RenderSink>,
    instrument: bool,
) -> Result<(Vec<(u64, u64)>, Recorder), ProtocolError> {
    let n_sys = scene.systems.len();
    let deadline = Duration::from_secs_f64(cfg.recv_timeout_secs);
    let mut fb = sink.as_ref().map(|s| {
        let (w, h) = s.camera.viewport();
        Framebuffer::new(w, h)
    });
    let mut per_frame = Vec::with_capacity(cfg.frames as usize);
    let mut rec =
        if instrument { Recorder::enabled(n + 2, ClockKind::Wall) } else { Recorder::disabled() };
    let mut phase_mark = ep.now();

    for frame in 0..cfg.frames {
        let mut alive = 0u64;
        let mut hash = StateHash::new();
        if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
            fb.clear(s.background);
            render_objects(fb, &s.camera, &scene.objects);
        }
        for _sys in 0..n_sys {
            for c in 0..n {
                let batch = expect_msg!(ep, deadline, c, "image generator", n + 1, frame,
                    Msg::RenderParticles { batch, .. } => batch, "RenderParticles");
                alive += batch.len() as u64;
                hash.extend(batch.iter());
                if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
                    match s.streaks {
                        Some((len, steps)) => {
                            render_streaks(fb, &s.camera, &batch, &s.splat, len, steps);
                        }
                        None => {
                            render_particles(fb, &s.camera, &batch, &s.splat);
                        }
                    }
                }
            }
        }
        if let (Some(fb), Some(s)) = (fb.as_ref(), sink.as_ref()) {
            if let Some(dir) = &s.out_dir {
                std::fs::create_dir_all(dir).map_err(|e| ProtocolError::Render {
                    frame,
                    detail: format!("create {}: {e}", dir.display()),
                })?;
                let path = dir.join(frame_filename(&s.prefix, frame));
                write_ppm(fb, &path).map_err(|e| ProtocolError::Render {
                    frame,
                    detail: format!("write {}: {e}", path.display()),
                })?;
            }
        }
        // The whole IG frame — gathering batches, rasterizing, writing —
        // is the Render phase; the image generator takes part in no other.
        mark(&mut rec, &mut phase_mark, &ep, frame, n + 1, Phase::Render);
        per_frame.push((alive, hash.finish()));
    }
    Ok((per_frame, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SystemSetup;
    use psa_core::actions::{ActionList, Gravity, KillOld, MoveParticles, RandomAccel};
    use psa_core::SystemSpec;

    fn scene() -> Scene {
        let mut spec = SystemSpec::test_spec(0);
        spec.emit_per_frame = 200;
        spec.max_age = 1.0;
        let mut s = Scene::new();
        s.add_system(SystemSetup::new(
            spec,
            ActionList::new()
                .then(Gravity::earth())
                .then(RandomAccel::new(2.0))
                .then(KillOld::new(1.0))
                .then(MoveParticles),
        ));
        s
    }

    #[test]
    fn threaded_run_completes_and_counts() {
        let cfg = RunConfig { frames: 6, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        assert_eq!(r.calculators, 3);
        assert_eq!(r.frames.len(), 6);
        assert!(r.total_time > 0.0);
        // population grows 200/frame until age-out
        let alive = r.frames.last().unwrap().alive;
        assert!((1000..=1400).contains(&alive), "alive {alive}");
    }

    #[test]
    fn threaded_static_vs_dynamic_both_work() {
        for balance in [BalanceMode::Static, BalanceMode::dynamic()] {
            let cfg = RunConfig { frames: 4, dt: 0.1, balance, ..Default::default() };
            let r = run_threaded(&scene(), &cfg, 2, None).expect("clean run");
            assert_eq!(r.frames.len(), 4);
        }
    }

    #[test]
    fn threaded_single_calculator_degenerates_gracefully() {
        let cfg = RunConfig { frames: 3, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 1, None).expect("clean run");
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.frames.last().unwrap().migrated, 0);
    }

    #[test]
    fn checksums_are_computed_per_frame() {
        let cfg = RunConfig { frames: 4, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 2, None).expect("clean run");
        // Populated frames hash to something; frames differ.
        assert!(r.frames.iter().all(|f| f.checksum != 0));
        assert_ne!(r.frames[0].checksum, r.frames[3].checksum);
    }

    #[test]
    fn silent_peer_surfaces_as_typed_timeout_with_context() {
        let mut eps = ThreadNet::build::<Msg>(2).into_iter();
        let e0 = eps.next().expect("two endpoints");
        let _e1 = eps.next().expect("two endpoints");
        let err = recv_within(&e0, 1, Duration::from_millis(5), "calculator", 0, 7)
            .expect_err("nobody ever sends");
        assert_eq!(err, ProtocolError::Timeout { role: "calculator", rank: 0, frame: 7, peer: 1 });
        assert!(err.to_string().contains("timed out waiting for rank 1"));
    }

    #[test]
    fn deterministic_load_metric_makes_dlb_reproducible() {
        let cfg = RunConfig {
            frames: 5,
            dt: 0.1,
            load_metric: LoadMetric::CountProportional,
            ..Default::default()
        };
        let a = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        let b = run_threaded(&scene(), &cfg, 3, None).expect("clean run");
        let ka: Vec<u64> = a.frames.iter().map(|f| f.checksum).collect();
        let kb: Vec<u64> = b.frames.iter().map(|f| f.checksum).collect();
        assert_eq!(ka, kb);
    }
}
