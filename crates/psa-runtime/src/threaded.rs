//! SPMD executor over real host threads.
//!
//! Runs the identical frame protocol as [`crate::virtual_exec`] but with
//! every role on its own OS thread, real crossbeam channels, wall-clock
//! timing, and a real image generator that rasterizes frames (optionally to
//! PPM files). This is the executable demonstration that the model
//! parallelizes — the virtual executor is the instrument that reproduces
//! the paper's cluster numbers.

use std::path::PathBuf;
use std::thread;

use netsim::{ThreadEndpoint, ThreadNet};
use psa_core::actions::ActionCtx;
use psa_core::{DomainMap, Particle, SubDomainStore};
use psa_math::stats::imbalance;
use psa_math::{Axis, Interval, Rng64};
use psa_render::image::{frame_filename, write_ppm};
use psa_render::{render_objects, render_particles, render_streaks, Camera, Framebuffer, SplatConfig};

use crate::balance::{self, LoadInfo};
use crate::config::{BalanceMode, RunConfig, SpaceMode};
use crate::msg::Msg;
use crate::report::{FrameReport, RunReport};
use crate::scene::Scene;

const TAG_CREATE: u64 = 0xC0;
const TAG_ACTIONS: u64 = 0xAC;

fn stream(seed: u64, tag: u64, frame: u64, sys: usize, rank: usize) -> Rng64 {
    Rng64::new(seed)
        .split(tag)
        .split(frame)
        .split(sys as u64)
        .split(rank as u64)
}

/// Where and how the image generator should rasterize.
#[derive(Clone)]
pub struct RenderSink {
    pub camera: Camera,
    pub splat: SplatConfig,
    /// Directory for PPM frames; `None` renders in memory only (frames are
    /// still rasterized so the work is real).
    pub out_dir: Option<PathBuf>,
    pub prefix: String,
    /// Background color.
    pub background: psa_math::Vec3,
    /// Render orientation-aligned streaks of `(length, steps)` instead of
    /// dots (uses the paper's mandatory orientation property).
    pub streaks: Option<(f32, usize)>,
}

impl RenderSink {
    /// In-memory rendering with an orthographic camera over the space.
    pub fn headless(camera: Camera) -> Self {
        RenderSink {
            camera,
            splat: SplatConfig::default(),
            out_dir: None,
            prefix: "frame".into(),
            background: psa_math::Vec3::new(0.02, 0.02, 0.05),
            streaks: None,
        }
    }
}

fn space_for(scene: &Scene, cfg: &RunConfig, sys: usize) -> Interval {
    match cfg.space {
        SpaceMode::Finite => scene.systems[sys].spec.space,
        SpaceMode::Infinite => Interval::INFINITE,
    }
}

/// Run the scene on `n` calculator threads (+ manager + image generator).
/// Returns the wall-clock report; `sink` controls real rasterization.
pub fn run_threaded(
    scene: &Scene,
    cfg: &RunConfig,
    n: usize,
    sink: Option<RenderSink>,
) -> RunReport {
    assert!(n >= 1);
    // The threaded executor implements the centralized protocol with the
    // Figure-2 per-system schedule; the decentralized variant and batched
    // schedule are virtual-executor studies (they change timing, which here
    // is real wall clock anyway).
    let cfg = &{
        let mut c = cfg.clone();
        if let BalanceMode::Decentralized(b) = c.balance {
            c.balance = BalanceMode::Dynamic(b);
        }
        c
    };
    let n_sys = scene.systems.len();
    let mgr = n;
    let ig = n + 1;
    let endpoints = ThreadNet::build::<Msg>(n + 2);
    let started = std::time::Instant::now();

    let initial_domains: Vec<DomainMap> = (0..n_sys)
        .map(|s| DomainMap::split_even(space_for(scene, cfg, s), Axis::X, n))
        .collect();

    let mut handles = Vec::new();
    let mut eps = endpoints.into_iter();

    // ---- Calculator threads --------------------------------------------
    for c in 0..n {
        let ep = eps.next().unwrap();
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        handles.push(thread::spawn(move || {
            calculator_main(ep, c, n, &scene, &cfg, domains0);
        }));
    }

    // ---- Manager thread -------------------------------------------------
    let mgr_handle = {
        let ep = eps.next().unwrap();
        let scene = scene.clone();
        let cfg = cfg.clone();
        let domains0 = initial_domains.clone();
        thread::spawn(move || manager_main(ep, n, &scene, &cfg, domains0))
    };
    debug_assert_eq!(mgr_handle.thread().id(), mgr_handle.thread().id());
    let _ = mgr;

    // ---- Image generator thread ------------------------------------------
    let ig_handle = {
        let ep = eps.next().unwrap();
        let scene = scene.clone();
        let cfg = cfg.clone();
        thread::spawn(move || image_generator_main(ep, n, &scene, &cfg, sink))
    };
    let _ = ig;

    for h in handles {
        h.join().expect("calculator thread panicked");
    }
    let mut frames = mgr_handle.join().expect("manager thread panicked");
    let rendered = ig_handle.join().expect("image generator thread panicked");
    // Merge IG-side alive counts into the manager's frame reports.
    for (fr, alive) in frames.iter_mut().zip(rendered) {
        fr.alive = alive;
    }

    let total = started.elapsed().as_secs_f64();
    RunReport {
        label: format!("THR-{}", cfg.label()),
        cluster: format!("{n} host threads"),
        calculators: n,
        total_time: total,
        frames: frames
            .into_iter()
            .filter(|f| f.frame >= cfg.warmup)
            .collect(),
        traffic: Default::default(),
    }
}

fn calculator_main(
    ep: ThreadEndpoint<Msg>,
    c: usize,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
) {
    let mgr = n;
    let ig = n + 1;
    let n_sys = scene.systems.len();
    let mut stores: Vec<SubDomainStore> = (0..n_sys)
        .map(|s| SubDomainStore::new(domains[s].slice(c), Axis::X, cfg.buckets))
        .collect();

    for frame in 0..cfg.frames {
        for sys in 0..n_sys {
            let setup = &scene.systems[sys];
            // Creation: receive batch + EOT.
            let Msg::Particles { batch, .. } = ep.recv(mgr) else {
                panic!("calc {c}: expected creation batch");
            };
            let Msg::EndOfTransmission { .. } = ep.recv(mgr) else {
                panic!("calc {c}: expected EOT");
            };
            stores[sys].extend(batch);

            // Calculus.
            let t0 = ep.now();
            let mut rng = stream(cfg.seed, TAG_ACTIONS, frame, sys, c + 1);
            let mut ctx = ActionCtx { dt: cfg.dt, frame, rng: &mut rng };
            let pre = stores[sys].len().max(1);
            setup.actions.run(&mut ctx, &mut stores[sys]);
            let compute = ep.now() - t0;

            // Exchange.
            let leavers = stores[sys].collect_leavers();
            let migrated = leavers.len();
            let mut per_dest: Vec<Vec<Particle>> = vec![Vec::new(); n];
            for p in leavers {
                let owner = domains[sys].owner_of(p.position.x);
                per_dest[owner].push(p);
            }
            let homebound = std::mem::take(&mut per_dest[c]);
            stores[sys].extend(homebound);
            for (d, batch) in per_dest.into_iter().enumerate() {
                if d != c {
                    ep.send(d, Msg::Particles { system: setup.spec.id, batch, scale: 1.0 });
                }
            }
            for d in 0..n {
                if d == c {
                    continue;
                }
                let Msg::Particles { batch, .. } = ep.recv(d) else {
                    panic!("calc {c}: expected exchange batch");
                };
                stores[sys].extend(batch);
            }

            // Load report (time rescaled to post-exchange count, §3.2.4).
            let count = stores[sys].len();
            let time = compute * count as f64 / pre as f64;
            ep.send(
                mgr,
                Msg::Load { system: setup.spec.id, info: LoadInfo { count, time }, migrated },
            );

            // Balancing.
            if cfg.balance.is_dynamic() {
                let Msg::Orders { orders, .. } = ep.recv(mgr) else {
                    panic!("calc {c}: expected orders");
                };
                let mut outgoing: Option<(usize, Vec<Particle>)> = None;
                for o in &orders {
                    match *o {
                        balance::Order::Send { to, amount } => {
                            let old_slice = stores[sys].slice();
                            let (mut donated, _sorted) = if to < c {
                                stores[sys].donate_low(amount)
                            } else {
                                stores[sys].donate_high(amount)
                            };
                            let kept = stores[sys].extent();
                            let cut =
                                crate::virtual_exec::donation_cut(to < c, &donated, kept, old_slice);
                            // half-open tie guard
                            if to < c {
                                let back: Vec<Particle> =
                                    donated.iter().filter(|p| p.position.x >= cut).copied().collect();
                                donated.retain(|p| p.position.x < cut);
                                stores[sys].extend(back);
                            } else {
                                let back: Vec<Particle> =
                                    donated.iter().filter(|p| p.position.x < cut).copied().collect();
                                donated.retain(|p| p.position.x >= cut);
                                stores[sys].extend(back);
                            }
                            ep.send(
                                mgr,
                                Msg::NewCut {
                                    system: setup.spec.id,
                                    boundary: c.min(to),
                                    cut,
                                },
                            );
                            outgoing = Some((to, donated));
                        }
                        balance::Order::Receive { .. } => {}
                    }
                }
                // Everyone receives the rebroadcast domains.
                let Msg::Domains { cuts, .. } = ep.recv(mgr) else {
                    panic!("calc {c}: expected domains");
                };
                let dm = DomainMap::from_cuts(Axis::X, cuts).expect("valid domains");
                let new_slice = dm.slice(c);
                domains[sys] = dm;
                if stores[sys].slice() != new_slice {
                    let stray = stores[sys].reshape(new_slice);
                    stores[sys].extend(stray);
                }
                // Donations move only after the new domains are in force.
                if let Some((to, donated)) = outgoing {
                    ep.send(to, Msg::Particles { system: setup.spec.id, batch: donated, scale: 1.0 });
                }
                for o in &orders {
                    if let balance::Order::Receive { from } = *o {
                        let Msg::Particles { batch, .. } = ep.recv(from) else {
                            panic!("calc {c}: expected donation");
                        };
                        stores[sys].extend(batch);
                    }
                }
            }

            // Ship the frame to the image generator.
            let batch: Vec<Particle> = stores[sys].iter().copied().collect();
            ep.send(ig, Msg::RenderParticles { system: setup.spec.id, batch });
        }
    }
}

fn manager_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    mut domains: Vec<DomainMap>,
) -> Vec<FrameReport> {
    let n_sys = scene.systems.len();
    let mut parity = 0usize;
    let mut frames = Vec::with_capacity(cfg.frames as usize);
    let mut last = ep.now();

    for frame in 0..cfg.frames {
        let mut fr = FrameReport { frame, ..Default::default() };
        for sys in 0..n_sys {
            let spec = &scene.systems[sys].spec;
            // Creation.
            let mut rng = stream(cfg.seed, TAG_CREATE, frame, sys, 0);
            let mut newborn = if frame == 0 {
                spec.emit_initial(&mut rng)
            } else {
                Vec::new()
            };
            newborn.extend((0..spec.emit_per_frame).map(|_| spec.emit_one(&mut rng)));
            let mut batches: Vec<Vec<Particle>> = vec![Vec::new(); n];
            for p in newborn {
                batches[domains[sys].owner_of(p.position.x)].push(p);
            }
            for (c, batch) in batches.into_iter().enumerate() {
                ep.send(c, Msg::Particles { system: spec.id, batch, scale: 1.0 });
                ep.send(c, Msg::EndOfTransmission { system: spec.id });
            }

            // Load reports.
            let mut loads = Vec::with_capacity(n);
            for c in 0..n {
                let Msg::Load { info, migrated, .. } = ep.recv(c) else {
                    panic!("manager: expected load report");
                };
                fr.migrated += migrated as u64;
                fr.migration_bytes += (migrated * psa_core::WIRE_BYTES) as u64;
                loads.push(info);
            }
            let counts: Vec<f64> = loads.iter().map(|l| l.count as f64).collect();
            fr.imbalance = fr.imbalance.max(imbalance(&counts));

            // Balancing.
            if let BalanceMode::Dynamic(bcfg) = cfg.balance {
                let speeds = vec![1.0; n]; // host threads are homogeneous
                let transfers = balance::evaluate(&loads, &speeds, parity, &bcfg);
                parity ^= 1;
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Orders {
                            system: spec.id,
                            orders: balance::orders_for(&transfers, c),
                        },
                    );
                }
                for t in &transfers {
                    let Msg::NewCut { boundary, cut, .. } = ep.recv(t.donor) else {
                        panic!("manager: expected new cut");
                    };
                    domains[sys].move_cut(boundary, cut).expect("in-range cut");
                    fr.balanced += t.amount as u64;
                }
                for c in 0..n {
                    ep.send(
                        c,
                        Msg::Domains { system: spec.id, cuts: domains[sys].cuts().to_vec() },
                    );
                }
            }
        }
        let now = ep.now();
        fr.frame_time = now - last;
        last = now;
        frames.push(fr);
    }
    frames
}

fn image_generator_main(
    ep: ThreadEndpoint<Msg>,
    n: usize,
    scene: &Scene,
    cfg: &RunConfig,
    sink: Option<RenderSink>,
) -> Vec<u64> {
    let n_sys = scene.systems.len();
    let mut fb = sink.as_ref().map(|s| {
        let (w, h) = s.camera.viewport();
        Framebuffer::new(w, h)
    });
    let mut alive_per_frame = Vec::with_capacity(cfg.frames as usize);

    for frame in 0..cfg.frames {
        let mut alive = 0u64;
        if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
            fb.clear(s.background);
            render_objects(fb, &s.camera, &scene.objects);
        }
        for _sys in 0..n_sys {
            for c in 0..n {
                let Msg::RenderParticles { batch, .. } = ep.recv(c) else {
                    panic!("image generator: expected render particles");
                };
                alive += batch.len() as u64;
                if let (Some(fb), Some(s)) = (fb.as_mut(), sink.as_ref()) {
                    match s.streaks {
                        Some((len, steps)) => {
                            render_streaks(fb, &s.camera, &batch, &s.splat, len, steps);
                        }
                        None => {
                            render_particles(fb, &s.camera, &batch, &s.splat);
                        }
                    }
                }
            }
        }
        if let (Some(fb), Some(s)) = (fb.as_ref(), sink.as_ref()) {
            if let Some(dir) = &s.out_dir {
                std::fs::create_dir_all(dir).expect("create frame directory");
                let path = dir.join(frame_filename(&s.prefix, frame));
                write_ppm(fb, &path).expect("write frame");
            }
        }
        alive_per_frame.push(alive);
    }
    alive_per_frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SystemSetup;
    use psa_core::actions::{ActionList, Gravity, KillOld, MoveParticles, RandomAccel};
    use psa_core::SystemSpec;

    fn scene() -> Scene {
        let mut spec = SystemSpec::test_spec(0);
        spec.emit_per_frame = 200;
        spec.max_age = 1.0;
        let mut s = Scene::new();
        s.add_system(SystemSetup::new(
            spec,
            ActionList::new()
                .then(Gravity::earth())
                .then(RandomAccel::new(2.0))
                .then(KillOld::new(1.0))
                .then(MoveParticles),
        ));
        s
    }

    #[test]
    fn threaded_run_completes_and_counts() {
        let cfg = RunConfig { frames: 6, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 3, None);
        assert_eq!(r.calculators, 3);
        assert_eq!(r.frames.len(), 6);
        assert!(r.total_time > 0.0);
        // population grows 200/frame until age-out
        let alive = r.frames.last().unwrap().alive;
        assert!(alive >= 1000 && alive <= 1400, "alive {alive}");
    }

    #[test]
    fn threaded_static_vs_dynamic_both_work() {
        for balance in [BalanceMode::Static, BalanceMode::dynamic()] {
            let cfg = RunConfig { frames: 4, dt: 0.1, balance, ..Default::default() };
            let r = run_threaded(&scene(), &cfg, 2, None);
            assert_eq!(r.frames.len(), 4);
        }
    }

    #[test]
    fn threaded_single_calculator_degenerates_gracefully() {
        let cfg = RunConfig { frames: 3, dt: 0.1, ..Default::default() };
        let r = run_threaded(&scene(), &cfg, 1, None);
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.frames.last().unwrap().migrated, 0);
    }
}
