//! The centralized neighbor-pair dynamic load balancer (paper §3.2.5).
//!
//! After each frame the manager receives `(count, time)` from every
//! calculator and walks neighbor pairs, ordering redistributions. The rules,
//! verbatim from the paper:
//!
//! * balancing only happens between domain neighbors;
//! * each process either sends or receives in one round, never both
//!   ("to avoid alignment of processes");
//! * a process participates in at most one pair per round;
//! * when pair `(x, x+1)` is rebalanced, pair `(x+1, x+2)` is skipped and
//!   evaluation resumes at `(x+2, x+3)`;
//! * the starting pair alternates every round so the same pair is not
//!   always favored;
//! * the new loads are proportional to the processing *power* of the two
//!   processes (estimated from sequential calibration, §4);
//! * transfers below a minimum size are not worth their cost and skipped.
//!
//! Everything here is pure — the executors feed reports in and carry the
//! decisions out — which is what makes the rules property-testable.

/// A calculator's per-frame load report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadInfo {
    /// Particles held after the exchange.
    pub count: usize,
    /// Processing time for the frame, rescaled to the post-exchange count
    /// (paper §3.2.4).
    pub time: f64,
}

/// Balancer tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalancerConfig {
    /// Rebalance a pair when `|t_a - t_b| > rel_threshold × max(t_a, t_b)`.
    pub rel_threshold: f64,
    /// Minimum particles per transfer; smaller moves are not worth the
    /// message cost (paper: "depending on the amount of particles to be
    /// moved … it may not be interesting to perform the transmission").
    pub min_transfer: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig { rel_threshold: 0.15, min_transfer: 32 }
    }
}

/// One balancing order, addressed to a calculator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Donate `amount` particles to neighbor `to` (a domain neighbor:
    /// rank ± 1).
    Send { to: usize, amount: usize },
    /// Expect a donation from neighbor `from`.
    Receive { from: usize },
}

/// A decided transfer between a neighbor pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub donor: usize,
    pub receiver: usize,
    pub amount: usize,
}

/// Is a neighbor pair imbalanced enough to act on?
///
/// Times are the primary signal. When *both* times are zero — first frame
/// after a restart, a degraded-mode report, or a count-proportional metric
/// that has not warmed up — the pair used to be skipped outright, leaving a
/// real particle imbalance unaddressed until a nonzero time arrived. Fall
/// back to the particle counts as the load signal in that case; two empty
/// ranks still compare equal, so an all-zero cluster stays stable.
fn pair_imbalanced(a: LoadInfo, b: LoadInfo, cfg: &BalancerConfig) -> bool {
    let scale = a.time.max(b.time);
    if scale > 0.0 {
        return (a.time - b.time).abs() > cfg.rel_threshold * scale;
    }
    let (ca, cb) = (a.count as f64, b.count as f64);
    let cscale = ca.max(cb);
    cscale > 0.0 && (ca - cb).abs() > cfg.rel_threshold * cscale
}

/// Evaluate one balancing round.
///
/// `loads[i]` is calculator `i`'s report; `powers[i]` its processing power
/// (relative speed — the paper calibrates this from sequential runs);
/// `start` is the index of the first pair to evaluate (the manager
/// alternates 0/1 between rounds).
///
/// A malformed round (`loads`/`powers` length mismatch — e.g. a corrupted
/// or fault-truncated report set) yields an empty decision set rather than
/// panicking the manager; balancing resumes on the next well-formed round.
pub fn evaluate(
    loads: &[LoadInfo],
    powers: &[f64],
    start: usize,
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    let n = loads.len();
    let mut out = Vec::new();
    if n != powers.len() || n < 2 {
        return out;
    }
    let mut i = start.min(1); // paper alternates between the 1st and 2nd pair
    while i + 1 < n {
        let (a, b) = (i, i + 1);
        if pair_imbalanced(loads[a], loads[b], cfg) {
            let total = loads[a].count + loads[b].count;
            let (pa, pb) = (powers[a].max(1e-9), powers[b].max(1e-9));
            let target_a = (total as f64 * pa / (pa + pb)).round() as usize;
            let target_a = target_a.min(total);
            let (donor, receiver, amount) = if loads[a].count > target_a {
                (a, b, loads[a].count - target_a)
            } else {
                (b, a, target_a - loads[a].count)
            };
            if amount >= cfg.min_transfer {
                out.push(Transfer { donor, receiver, amount });
                // Pair (i+1, i+2) is not evaluated this round.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Evaluate one round of the *decentralized* balancer (paper future work,
/// §6): every neighbor pair decides independently from the two reports it
/// can see locally — no manager, no alternation, no one-pair-per-process
/// rule. To damp the oscillation that simultaneous decisions invite, each
/// pair moves only **half** the excess toward the power-proportional
/// target. The returned set may involve one calculator in two transfers
/// (sending left while receiving from the right), which is exactly the
/// "alignment" the centralized rules forbid.
pub fn evaluate_decentralized(
    loads: &[LoadInfo],
    powers: &[f64],
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    let n = loads.len();
    let mut out = Vec::new();
    if n != powers.len() {
        return out;
    }
    for a in 0..n.saturating_sub(1) {
        let b = a + 1;
        if !pair_imbalanced(loads[a], loads[b], cfg) {
            continue;
        }
        let total = loads[a].count + loads[b].count;
        let (pa, pb) = (powers[a].max(1e-9), powers[b].max(1e-9));
        let target_a = ((total as f64) * pa / (pa + pb)).round() as usize;
        let target_a = target_a.min(total);
        let (donor, receiver, excess) = if loads[a].count > target_a {
            (a, b, loads[a].count - target_a)
        } else {
            (b, a, target_a - loads[a].count)
        };
        let amount = excess / 2;
        if amount >= cfg.min_transfer {
            out.push(Transfer { donor, receiver, amount });
        }
    }
    out
}

/// Evaluate one balancing round over a *subset* of the calculators — the
/// degraded-mode entry point used when some ranks are dead or unreported.
///
/// `present` lists the participating real ranks in ascending order;
/// `loads[i]`/`powers[i]` describe `present[i]`. The present ranks are
/// treated as domain neighbors in list order (after a crash the dead rank's
/// slice has been collapsed to zero width, so consecutive present ranks
/// really do share a boundary), run through [`evaluate`], and the resulting
/// transfers are mapped back to real rank numbers.
pub fn evaluate_present(
    loads: &[LoadInfo],
    powers: &[f64],
    present: &[usize],
    start: usize,
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    if loads.len() != present.len() || powers.len() != present.len() {
        return Vec::new();
    }
    debug_assert!(present.windows(2).all(|w| w[0] < w[1]), "present ranks must ascend");
    evaluate(loads, powers, start, cfg)
        .into_iter()
        .map(|t| Transfer {
            donor: present[t.donor],
            receiver: present[t.receiver],
            amount: t.amount,
        })
        .collect()
}

/// [`validate_transfers`] for a degraded round: adjacency is checked in
/// *present-list* space (consecutive present ranks are neighbors across any
/// collapsed dead slices between them), plus the one-pair-per-process rule.
pub fn validate_transfers_mapped(transfers: &[Transfer], present: &[usize]) -> Result<(), String> {
    let pos_of = |rank: usize| present.iter().position(|&r| r == rank);
    let mut involved = vec![0u8; present.len()];
    for t in transfers {
        let (Some(d), Some(r)) = (pos_of(t.donor), pos_of(t.receiver)) else {
            return Err(format!("transfer {t:?} involves a rank not present"));
        };
        if d.abs_diff(r) != 1 {
            return Err(format!("transfer {t:?} is not between present-list neighbors"));
        }
        involved[d] += 1;
        involved[r] += 1;
    }
    if let Some((i, _)) = involved.iter().enumerate().find(|(_, &c)| c > 1) {
        return Err(format!("rank {} participates in more than one pair", present[i]));
    }
    Ok(())
}

/// Expand transfers into per-calculator orders.
pub fn orders_for(transfers: &[Transfer], rank: usize) -> Vec<Order> {
    let mut out = Vec::new();
    for t in transfers {
        if t.donor == rank {
            out.push(Order::Send { to: t.receiver, amount: t.amount });
        } else if t.receiver == rank {
            out.push(Order::Receive { from: t.donor });
        }
    }
    out
}

/// Check the paper's structural invariants on a decision set; used by
/// debug assertions and property tests.
pub fn validate_transfers(transfers: &[Transfer], n: usize) -> Result<(), String> {
    let mut involved = vec![0u8; n];
    for t in transfers {
        if t.donor >= n || t.receiver >= n {
            return Err(format!("transfer {t:?} out of range"));
        }
        if t.donor.abs_diff(t.receiver) != 1 {
            return Err(format!("transfer {t:?} is not between domain neighbors"));
        }
        involved[t.donor] += 1;
        involved[t.receiver] += 1;
    }
    if let Some((rank, _)) = involved.iter().enumerate().find(|(_, &c)| c > 1) {
        return Err(format!("rank {rank} participates in more than one pair"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(count: usize, time: f64) -> LoadInfo {
        LoadInfo { count, time }
    }

    fn cfg() -> BalancerConfig {
        BalancerConfig { rel_threshold: 0.15, min_transfer: 10 }
    }

    #[test]
    fn balanced_pair_is_left_alone() {
        let loads = [li(100, 1.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert!(t.is_empty());
    }

    #[test]
    fn imbalanced_pair_transfers_half_the_excess() {
        let loads = [li(200, 2.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 50 }]);
    }

    #[test]
    fn power_weighted_targets() {
        // Equal times are fine; force imbalance by time, then check the
        // target respects a 2:1 power ratio.
        let loads = [li(300, 3.0), li(0, 0.0)];
        let t = evaluate(&loads, &[2.0, 1.0], 0, &cfg());
        // target for rank 0 = 300 × 2/3 = 200 → donate 100 to rank 1.
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 100 }]);
    }

    #[test]
    fn slow_process_donates_to_fast() {
        let loads = [li(100, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[0.5, 2.0], 0, &cfg());
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].donor, 0);
        assert_eq!(t[0].receiver, 1);
        // target_0 = 200 × 0.5/2.5 = 40 → donate 60
        assert_eq!(t[0].amount, 60);
    }

    #[test]
    fn below_threshold_no_action() {
        let loads = [li(105, 1.05), li(100, 1.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn min_transfer_suppresses_tiny_moves() {
        let loads = [li(16, 1.3), li(8, 0.8)];
        let c = BalancerConfig { rel_threshold: 0.15, min_transfer: 10 };
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &c).is_empty());
        let c2 = BalancerConfig { rel_threshold: 0.15, min_transfer: 2 };
        assert_eq!(evaluate(&loads, &[1.0, 1.0], 0, &c2).len(), 1);
    }

    #[test]
    fn rebalanced_pair_consumes_next() {
        // 0-1 imbalanced, 1-2 imbalanced, 2-3 imbalanced. Starting at 0:
        // (0,1) rebalances, (1,2) skipped, (2,3) rebalances.
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0; 4], 0, &cfg());
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].donor, t[0].receiver), (0, 1));
        assert_eq!((t[1].donor, t[1].receiver), (2, 3));
        validate_transfers(&t, 4).unwrap();
    }

    #[test]
    fn alternating_start_shifts_pairs() {
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0; 4], 1, &cfg());
        // starting at pair (1,2): 1 has 100 (t=1), 2 has 400 (t=4) → 2→1
        assert_eq!((t[0].donor, t[0].receiver), (2, 1));
        validate_transfers(&t, 4).unwrap();
    }

    #[test]
    fn no_process_in_two_pairs() {
        // Adversarial staircase loads.
        let loads = [li(800, 8.0), li(400, 4.0), li(200, 2.0), li(100, 1.0), li(50, 0.5)];
        for start in [0, 1] {
            let t = evaluate(&loads, &[1.0; 5], start, &cfg());
            validate_transfers(&t, 5).unwrap();
        }
    }

    #[test]
    fn single_calculator_never_balances() {
        assert!(evaluate(&[li(100, 1.0)], &[1.0], 0, &cfg()).is_empty());
        assert!(evaluate(&[], &[], 0, &cfg()).is_empty());
    }

    #[test]
    fn zero_time_pair_is_stable() {
        let loads = [li(0, 0.0), li(0, 0.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn zero_time_imbalance_falls_back_to_counts() {
        // Both times zero but the counts are lopsided (first round after a
        // restart): the old scale guard skipped the pair entirely; the count
        // fallback must order the power-proportional move.
        let loads = [li(300, 0.0), li(100, 0.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 100 }]);
        // Same signal drives the decentralized variant (half-excess).
        let dec = evaluate_decentralized(&loads, &[1.0, 1.0], &cfg());
        assert_eq!(dec, vec![Transfer { donor: 0, receiver: 1, amount: 50 }]);
        // Equal zero-time counts stay below threshold — no oscillation.
        let even = [li(200, 0.0), li(200, 0.0)];
        assert!(evaluate(&even, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn mismatched_report_lengths_yield_an_empty_round() {
        // A fault-truncated report set must not panic the manager: every
        // entry point returns an empty decision set and waits for the next
        // well-formed round.
        let loads = [li(400, 4.0), li(100, 1.0), li(100, 1.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
        assert!(evaluate_decentralized(&loads, &[1.0], &cfg()).is_empty());
        assert!(evaluate_present(&loads, &[1.0, 1.0], &[0, 2], 0, &cfg()).is_empty());
        assert!(evaluate_present(&loads[..2], &[1.0, 1.0, 1.0], &[0, 1, 2], 0, &cfg()).is_empty());
    }

    #[test]
    fn orders_expand_per_rank() {
        let t = vec![Transfer { donor: 0, receiver: 1, amount: 50 }];
        assert_eq!(orders_for(&t, 0), vec![Order::Send { to: 1, amount: 50 }]);
        assert_eq!(orders_for(&t, 1), vec![Order::Receive { from: 0 }]);
        assert!(orders_for(&t, 2).is_empty());
    }

    #[test]
    fn validate_rejects_non_neighbors() {
        let bad = vec![Transfer { donor: 0, receiver: 2, amount: 5 }];
        assert!(validate_transfers(&bad, 3).is_err());
    }

    #[test]
    fn validate_rejects_double_participation() {
        let bad = vec![
            Transfer { donor: 0, receiver: 1, amount: 5 },
            Transfer { donor: 1, receiver: 2, amount: 5 },
        ];
        assert!(validate_transfers(&bad, 3).is_err());
    }

    #[test]
    fn decentralized_all_pairs_may_act() {
        // Staircase loads: centralized consumes neighbors, decentralized
        // lets every pair act — including a rank sending and receiving.
        let loads = [li(800, 8.0), li(400, 4.0), li(200, 2.0), li(100, 1.0)];
        let cfg = BalancerConfig { rel_threshold: 0.1, min_transfer: 10 };
        let dec = evaluate_decentralized(&loads, &[1.0; 4], &cfg);
        assert_eq!(dec.len(), 3, "all three pairs act: {dec:?}");
        // rank 1 both receives (from 0) and sends (to 2)
        assert!(dec.iter().any(|t| t.receiver == 1));
        assert!(dec.iter().any(|t| t.donor == 1));
        // half-excess damping: pair (0,1) target 600 → excess 200 → move 100
        assert_eq!(dec[0], Transfer { donor: 0, receiver: 1, amount: 100 });
    }

    #[test]
    fn decentralized_donor_never_overdraws() {
        // Even when a rank donates on both sides, half-excess per pair can
        // never exceed its holdings: each amount ≤ count/2.
        let loads = [li(0, 0.0), li(100, 1.0), li(0, 0.0)];
        let cfg = BalancerConfig { rel_threshold: 0.1, min_transfer: 1 };
        let dec = evaluate_decentralized(&loads, &[1.0; 3], &cfg);
        let total_from_1: usize = dec.iter().filter(|t| t.donor == 1).map(|t| t.amount).sum();
        assert!(total_from_1 <= 100, "overdraw: {dec:?}");
        assert_eq!(dec.len(), 2);
    }

    #[test]
    fn decentralized_converges_but_damping_costs_rounds() {
        // Point spike: decentralized diffusion converges without any
        // manager, but its half-excess damping costs rounds relative to
        // the centralized full-excess walk — the trade-off the ablation
        // bench quantifies. (Empirically ~2x on this spike.)
        let drain = |decentralized: bool| {
            let n = 12;
            let mut counts = vec![1_000usize; n];
            counts[0] = 200_000;
            let powers = vec![1.0; n];
            let cfg = BalancerConfig { rel_threshold: 0.1, min_transfer: 32 };
            for round in 0..2_000usize {
                let l: Vec<LoadInfo> = counts.iter().map(|&c| li(c, c as f64 * 1e-6)).collect();
                let ts = if decentralized {
                    evaluate_decentralized(&l, &powers, &cfg)
                } else {
                    evaluate(&l, &powers, round % 2, &cfg)
                };
                if ts.is_empty() {
                    return round;
                }
                for t in ts {
                    counts[t.donor] -= t.amount.min(counts[t.donor]);
                    counts[t.receiver] += t.amount;
                }
            }
            2_000
        };
        let dec = drain(true);
        let cen = drain(false);
        assert!(dec < 2_000, "decentralized must converge, took {dec}");
        assert!(cen < 2_000, "centralized must converge, took {cen}");
        assert!(
            dec > cen && dec < 4 * cen,
            "damping costs rounds but stays bounded: dec {dec} vs cen {cen}"
        );
    }

    #[test]
    fn present_subset_maps_back_to_real_ranks() {
        // Rank 1 is dead: present = [0, 2, 3]. An imbalance between 0 and 2
        // must produce a transfer between the *real* ranks 0 and 2, which
        // plain validate_transfers would reject as non-neighbors.
        let loads = [li(400, 4.0), li(100, 1.0), li(100, 1.0)];
        let present = [0usize, 2, 3];
        let t = evaluate_present(&loads, &[1.0; 3], &present, 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 2, amount: 150 }]);
        assert!(validate_transfers(&t, 4).is_err());
        validate_transfers_mapped(&t, &present).unwrap();
    }

    #[test]
    fn mapped_validation_rejects_absent_and_nonadjacent() {
        let present = [0usize, 2, 3];
        let absent = vec![Transfer { donor: 1, receiver: 2, amount: 5 }];
        assert!(validate_transfers_mapped(&absent, &present).is_err());
        let skip = vec![Transfer { donor: 0, receiver: 3, amount: 5 }];
        assert!(validate_transfers_mapped(&skip, &present).is_err());
        let double = vec![
            Transfer { donor: 0, receiver: 2, amount: 5 },
            Transfer { donor: 2, receiver: 3, amount: 5 },
        ];
        assert!(validate_transfers_mapped(&double, &present).is_err());
    }

    #[test]
    fn present_subset_with_all_ranks_matches_plain_evaluate() {
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let present = [0usize, 1, 2, 3];
        for start in [0, 1] {
            assert_eq!(
                evaluate_present(&loads, &[1.0; 4], &present, start, &cfg()),
                evaluate(&loads, &[1.0; 4], start, &cfg())
            );
        }
    }

    #[test]
    fn convergence_under_repeated_rounds() {
        // Simulate rounds: time proportional to count; all powers equal.
        // The balancer must monotonically reduce imbalance to threshold.
        let mut counts = vec![1000usize, 10, 10, 10, 10, 10, 10, 10];
        let powers = vec![1.0; 8];
        let c = BalancerConfig { rel_threshold: 0.1, min_transfer: 5 };
        for round in 0..64 {
            let loads: Vec<LoadInfo> = counts.iter().map(|&n| li(n, n as f64 * 1e-3)).collect();
            let ts = evaluate(&loads, &powers, round % 2, &c);
            validate_transfers(&ts, 8).unwrap();
            for t in ts {
                counts[t.donor] -= t.amount;
                counts[t.receiver] += t.amount;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / 8.0;
        assert!(max / mean < 1.35, "neighbor balancing should flatten the spike: {counts:?}");
    }
}
