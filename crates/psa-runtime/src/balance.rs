//! Load-balancing decision kernel (paper §3.2.5 and beyond).
//!
//! After each frame the manager (or, for decentralized strategies, each
//! neighbor pair) receives `(count, time)` reports and decides particle
//! transfers. The paper's centralized neighbor-pair rules, verbatim:
//!
//! * balancing only happens between domain neighbors;
//! * each process either sends or receives in one round, never both
//!   ("to avoid alignment of processes");
//! * a process participates in at most one pair per round;
//! * when pair `(x, x+1)` is rebalanced, pair `(x+1, x+2)` is skipped and
//!   evaluation resumes at `(x+2, x+3)`;
//! * the starting pair alternates every round so the same pair is not
//!   always favored;
//! * the new loads are proportional to the processing *power* of the two
//!   processes (estimated from sequential calibration, §4);
//! * transfers below a minimum size are not worth their cost and skipped.
//!
//! The minimum-transfer rule is where the paper's scheme dies at scale:
//! BENCH_5 showed that past ~32 ranks every candidate move is smaller than
//! the fixed constant, so the balancer issues zero orders while the balance
//! phase keeps charging ~2× wall per frame. [`BalancerConfig`] therefore
//! makes the minimum *adaptive* — a fraction of the mean particles per
//! participating rank — with the paper's fixed constant preserved as the
//! [`BalancerConfig::paper`] override.
//!
//! Strategies are pluggable behind the [`Balancer`] trait; the concrete
//! implementations live in [`crate::balancers`]. Everything here is pure —
//! the executors feed reports in and carry the decisions out — which is
//! what makes the rules property-testable.

/// A calculator's per-frame load report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadInfo {
    /// Particles held after the exchange.
    pub count: usize,
    /// Processing time for the frame, rescaled to the post-exchange count
    /// (paper §3.2.4).
    pub time: f64,
}

/// Balancer tuning, shared by every strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalancerConfig {
    /// Rebalance a pair when `|t_a - t_b| > rel_threshold × max(t_a, t_b)`.
    pub rel_threshold: f64,
    /// Fixed minimum particles per transfer (paper: "depending on the
    /// amount of particles to be moved … it may not be interesting to
    /// perform the transmission"; the reference implementation used 32).
    /// `None` — the default — derives the minimum adaptively from the mean
    /// particles per participating rank, which is what keeps balancing
    /// alive past 32 ranks where slices hold a handful of particles each.
    pub min_transfer: Option<usize>,
    /// Adaptive minimum: this fraction of the mean particles per present
    /// rank (ignored when `min_transfer` is `Some`).
    pub min_transfer_frac: f64,
    /// Adaptive minimum never falls below this floor.
    pub min_transfer_floor: usize,
    /// Diffusive strategy damping α: the fraction of a pair's excess moved
    /// per round. Stable on a 1-D chain for α ≤ 1/2; the default 1/3 damps
    /// simultaneous both-neighbor decisions.
    pub diffusion_alpha: f64,
    /// Hierarchical/SFC strategy: ranks per contiguous group along the 1-D
    /// domain curve. `0` — the default — picks ≈√n automatically.
    pub group_size: usize,
    /// Short-circuit the balance phase after this many consecutive
    /// zero-order rounds for a system (`0` disables the short-circuit —
    /// the paper-faithful behavior of evaluating every frame).
    pub idle_after: u32,
    /// While short-circuited, re-probe the balancer every this many frames
    /// so a late-developing imbalance is still caught.
    pub reprobe_period: u64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            rel_threshold: 0.15,
            min_transfer: None,
            min_transfer_frac: 0.01,
            min_transfer_floor: 1,
            diffusion_alpha: 1.0 / 3.0,
            group_size: 0,
            idle_after: 3,
            reprobe_period: 8,
        }
    }
}

impl BalancerConfig {
    /// The paper-faithful configuration: fixed minimum transfer of 32
    /// particles, no balance-phase short-circuit. This reproduces the
    /// BENCH_1..5 behavior bit-for-bit, dead-zone included.
    pub fn paper() -> Self {
        BalancerConfig { min_transfer: Some(32), idle_after: 0, ..Self::default() }
    }

    /// A fixed minimum-transfer override (test/tuning convenience).
    pub fn fixed(min_transfer: usize) -> Self {
        BalancerConfig { min_transfer: Some(min_transfer), ..Self::default() }
    }

    /// The minimum transfer size in effect for a round with `total`
    /// particles spread over `ranks` participating ranks.
    pub fn effective_min_transfer(&self, total: usize, ranks: usize) -> usize {
        if let Some(fixed) = self.min_transfer {
            return fixed;
        }
        let mean = total as f64 / ranks.max(1) as f64;
        let adaptive = (mean * self.min_transfer_frac).round() as usize;
        adaptive.max(self.min_transfer_floor)
    }
}

/// One balancing order, addressed to a calculator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Donate `amount` particles to neighbor `to` (a domain neighbor:
    /// rank ± 1).
    Send { to: usize, amount: usize },
    /// Expect a donation from neighbor `from`.
    Receive { from: usize },
}

/// A decided transfer between a neighbor pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub donor: usize,
    pub receiver: usize,
    pub amount: usize,
}

/// One pluggable load-balancing strategy: decide one round of transfers.
///
/// `loads[i]` / `powers[i]` describe real rank `present[i]` (`present`
/// ascends; after a crash the dead rank's slice is collapsed, so
/// consecutive present ranks really share a domain boundary). `round` is
/// the 0-based count of *evaluated* balance rounds, driving the paper's
/// start-pair alternation and the hierarchical level alternation.
///
/// Implementations must return transfers
///
/// * in **real** rank space (mapped through `present`),
/// * only between present-list neighbors,
/// * with no donor ever ordered to move more than it holds,
///
/// and must be pure functions of their arguments — the same inputs decide
/// the same transfers on every executor, which is what keeps same-seed
/// fingerprints byte-identical. [`validate_round`] checks the structural
/// contract (debug assertions + the trait-generic property suite).
///
/// ```
/// use psa_runtime::{Balancer, BalancerConfig, LoadInfo};
///
/// // The paper's §3.2.5 walk on a 4-rank chain with rank 0 overloaded:
/// let strategy = psa_runtime::strategy_for(&psa_runtime::BalanceMode::dynamic())
///     .expect("dynamic mode selects the neighbor-pair strategy");
/// let loads = [
///     LoadInfo { count: 400, time: 4.0e-3 },
///     LoadInfo { count: 100, time: 1.0e-3 },
///     LoadInfo { count: 100, time: 1.0e-3 },
///     LoadInfo { count: 100, time: 1.0e-3 },
/// ];
/// let present = [0, 1, 2, 3]; // nobody crashed
/// let transfers =
///     strategy.decide(&loads, &[1.0; 4], &present, 0, &BalancerConfig::fixed(10));
/// // Round 0 starts at pair (0, 1): the overloaded rank donates downhill.
/// assert_eq!(transfers.len(), 1);
/// assert_eq!((transfers[0].donor, transfers[0].receiver), (0, 1));
/// assert!(transfers[0].amount <= loads[0].count);
/// ```
pub trait Balancer {
    /// Stable strategy label (bench columns, trace annotations).
    fn name(&self) -> &'static str;

    /// `true` when decisions need only pair-local load information — no
    /// manager round-trip. The engine executes such strategies with
    /// donor-broadcast cuts instead of manager-mediated orders.
    fn decentralized(&self) -> bool {
        false
    }

    /// `true` when one rank may appear in several transfers of one round
    /// (relaxing the paper's one-pair-per-process rule).
    fn multi_pair(&self) -> bool {
        false
    }

    /// Decide one balancing round.
    fn decide(
        &self,
        loads: &[LoadInfo],
        powers: &[f64],
        present: &[usize],
        round: u64,
        cfg: &BalancerConfig,
    ) -> Vec<Transfer>;
}

/// Is a neighbor pair imbalanced enough to act on?
///
/// Times are the primary signal. When *both* times are zero — first frame
/// after a restart, a degraded-mode report, or a count-proportional metric
/// that has not warmed up — the pair used to be skipped outright, leaving a
/// real particle imbalance unaddressed until a nonzero time arrived. Fall
/// back to the particle counts as the load signal in that case; two empty
/// ranks still compare equal, so an all-zero cluster stays stable.
pub(crate) fn pair_imbalanced(a: LoadInfo, b: LoadInfo, cfg: &BalancerConfig) -> bool {
    let scale = a.time.max(b.time);
    if scale > 0.0 {
        return (a.time - b.time).abs() > cfg.rel_threshold * scale;
    }
    let (ca, cb) = (a.count as f64, b.count as f64);
    let cscale = ca.max(cb);
    cscale > 0.0 && (ca - cb).abs() > cfg.rel_threshold * cscale
}

/// The power-proportional target for the first rank of a pair, and the
/// resulting (donor, receiver, excess) move toward it.
pub(crate) fn pair_move(
    a: usize,
    b: usize,
    loads: &[LoadInfo],
    powers: &[f64],
) -> (usize, usize, usize) {
    let total = loads[a].count + loads[b].count;
    let (pa, pb) = (powers[a].max(1e-9), powers[b].max(1e-9));
    let target_a = ((total as f64) * pa / (pa + pb)).round() as usize;
    let target_a = target_a.min(total);
    if loads[a].count > target_a {
        (a, b, loads[a].count - target_a)
    } else {
        (b, a, target_a - loads[a].count)
    }
}

/// Evaluate one centralized neighbor-pair round (paper §3.2.5).
///
/// `loads[i]` is calculator `i`'s report; `powers[i]` its processing power
/// (relative speed — the paper calibrates this from sequential runs);
/// `start` is the index of the first pair to evaluate (the manager
/// alternates 0/1 between rounds).
///
/// A malformed round (`loads`/`powers` length mismatch — e.g. a corrupted
/// or fault-truncated report set) yields an empty decision set rather than
/// panicking the manager; balancing resumes on the next well-formed round.
pub fn evaluate(
    loads: &[LoadInfo],
    powers: &[f64],
    start: usize,
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    let n = loads.len();
    let mut out = Vec::new();
    if n != powers.len() || n < 2 {
        return out;
    }
    let total: usize = loads.iter().map(|l| l.count).sum();
    let min_transfer = cfg.effective_min_transfer(total, n);
    let mut i = start.min(1); // paper alternates between the 1st and 2nd pair
    while i + 1 < n {
        let (a, b) = (i, i + 1);
        if pair_imbalanced(loads[a], loads[b], cfg) {
            let (donor, receiver, amount) = pair_move(a, b, loads, powers);
            if amount >= min_transfer {
                out.push(Transfer { donor, receiver, amount });
                // Pair (i+1, i+2) is not evaluated this round.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Evaluate one round of the *decentralized* half-excess balancer (paper
/// future work, §6): every neighbor pair decides independently from the two
/// reports it can see locally — no manager, no alternation, no
/// one-pair-per-process rule. To damp the oscillation that simultaneous
/// decisions invite, each pair moves only **half** the excess toward the
/// power-proportional target. The returned set may involve one calculator
/// in two transfers (sending left while receiving from the right), which is
/// exactly the "alignment" the centralized rules forbid.
pub fn evaluate_decentralized(
    loads: &[LoadInfo],
    powers: &[f64],
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    let n = loads.len();
    let mut out = Vec::new();
    if n != powers.len() {
        return out;
    }
    let total: usize = loads.iter().map(|l| l.count).sum();
    let min_transfer = cfg.effective_min_transfer(total, n);
    for a in 0..n.saturating_sub(1) {
        let b = a + 1;
        if !pair_imbalanced(loads[a], loads[b], cfg) {
            continue;
        }
        let (donor, receiver, excess) = pair_move(a, b, loads, powers);
        let amount = excess / 2;
        if amount >= min_transfer.max(1) {
            out.push(Transfer { donor, receiver, amount });
        }
    }
    out
}

/// Evaluate one balancing round over a *subset* of the calculators — the
/// degraded-mode entry point used when some ranks are dead or unreported.
///
/// `present` lists the participating real ranks in ascending order;
/// `loads[i]`/`powers[i]` describe `present[i]`. The present ranks are
/// treated as domain neighbors in list order (after a crash the dead rank's
/// slice has been collapsed to zero width, so consecutive present ranks
/// really do share a boundary), run through [`evaluate`], and the resulting
/// transfers are mapped back to real rank numbers.
pub fn evaluate_present(
    loads: &[LoadInfo],
    powers: &[f64],
    present: &[usize],
    start: usize,
    cfg: &BalancerConfig,
) -> Vec<Transfer> {
    if loads.len() != present.len() || powers.len() != present.len() {
        return Vec::new();
    }
    debug_assert!(present.windows(2).all(|w| w[0] < w[1]), "present ranks must ascend");
    map_to_present(evaluate(loads, powers, start, cfg), present)
}

/// Map transfers decided in present-index space back to real rank numbers.
pub fn map_to_present(transfers: Vec<Transfer>, present: &[usize]) -> Vec<Transfer> {
    transfers
        .into_iter()
        .map(|t| Transfer {
            donor: present[t.donor],
            receiver: present[t.receiver],
            amount: t.amount,
        })
        .collect()
}

/// [`validate_transfers`] for a degraded round: adjacency is checked in
/// *present-list* space (consecutive present ranks are neighbors across any
/// collapsed dead slices between them), plus the one-pair-per-process rule.
///
/// `present` must ascend (callers build it from an ordered rank walk; the
/// ordering is also what [`evaluate_present`] asserts), which lets every
/// endpoint resolve by binary search — a 1,024-rank round validates in
/// O(t log n) instead of the O(t·n) a linear scan would cost.
pub fn validate_transfers_mapped(transfers: &[Transfer], present: &[usize]) -> Result<(), String> {
    if !present.windows(2).all(|w| w[0] < w[1]) {
        return Err("present ranks must ascend".into());
    }
    let mut involved = vec![0u8; present.len()];
    for t in transfers {
        let (Ok(d), Ok(r)) = (present.binary_search(&t.donor), present.binary_search(&t.receiver))
        else {
            return Err(format!("transfer {t:?} involves a rank not present"));
        };
        if d.abs_diff(r) != 1 {
            return Err(format!("transfer {t:?} is not between present-list neighbors"));
        }
        involved[d] += 1;
        involved[r] += 1;
    }
    if let Some((i, _)) = involved.iter().enumerate().find(|(_, &c)| c > 1) {
        return Err(format!("rank {} participates in more than one pair", present[i]));
    }
    Ok(())
}

/// Structural validation for one decided round of **any** strategy: every
/// endpoint present, every transfer between present-list neighbors, and no
/// donor ordered to move more than it holds (summed across a multi-pair
/// round). Strategies that keep the paper's one-pair-per-process rule
/// (`multi_pair == false`) are additionally held to it.
pub fn validate_round(
    transfers: &[Transfer],
    loads: &[LoadInfo],
    present: &[usize],
    multi_pair: bool,
) -> Result<(), String> {
    if !present.windows(2).all(|w| w[0] < w[1]) {
        return Err("present ranks must ascend".into());
    }
    if loads.len() != present.len() {
        return Err(format!("{} loads for {} present ranks", loads.len(), present.len()));
    }
    let mut outgoing = vec![0usize; present.len()];
    let mut involved = vec![0u8; present.len()];
    for t in transfers {
        let (Ok(d), Ok(r)) = (present.binary_search(&t.donor), present.binary_search(&t.receiver))
        else {
            return Err(format!("transfer {t:?} involves a rank not present"));
        };
        if d.abs_diff(r) != 1 {
            return Err(format!("transfer {t:?} is not between present-list neighbors"));
        }
        outgoing[d] += t.amount;
        involved[d] += 1;
        involved[r] += 1;
    }
    for (i, &out) in outgoing.iter().enumerate() {
        if out > loads[i].count {
            return Err(format!(
                "rank {} ordered to donate {} of {} held",
                present[i], out, loads[i].count
            ));
        }
    }
    if !multi_pair {
        if let Some((i, _)) = involved.iter().enumerate().find(|(_, &c)| c > 1) {
            return Err(format!("rank {} participates in more than one pair", present[i]));
        }
    }
    Ok(())
}

/// Should this round's balance phase be short-circuited to a plain barrier?
///
/// After `idle_after` consecutive zero-order rounds the phase stops paying
/// the full evaluation/order/broadcast round-trip — the cost that inverts
/// DLB against SLB in the BENCH_5 dead zone — and degrades to the
/// synchronization step static balancing needs, re-probing every
/// `reprobe_period` frames so a workload that drifts back out of balance is
/// picked up again. `idle_after == 0` disables the hysteresis (the paper's
/// behavior); `reprobe_period == 0` means never re-probe.
///
/// The decision depends only on the decided-transfer history and the frame
/// number, both pure functions of the simulation state, so every executor
/// skips the same rounds and same-seed fingerprints stay byte-identical.
pub fn should_skip_round(idle_rounds: u32, frame: u64, cfg: &BalancerConfig) -> bool {
    cfg.idle_after > 0
        && idle_rounds >= cfg.idle_after
        && (cfg.reprobe_period == 0 || !frame.is_multiple_of(cfg.reprobe_period))
}

/// Expand transfers into per-calculator orders.
pub fn orders_for(transfers: &[Transfer], rank: usize) -> Vec<Order> {
    let mut out = Vec::new();
    for t in transfers {
        if t.donor == rank {
            out.push(Order::Send { to: t.receiver, amount: t.amount });
        } else if t.receiver == rank {
            out.push(Order::Receive { from: t.donor });
        }
    }
    out
}

/// Check the paper's structural invariants on a decision set; used by
/// debug assertions and property tests.
pub fn validate_transfers(transfers: &[Transfer], n: usize) -> Result<(), String> {
    let mut involved = vec![0u8; n];
    for t in transfers {
        if t.donor >= n || t.receiver >= n {
            return Err(format!("transfer {t:?} out of range"));
        }
        if t.donor.abs_diff(t.receiver) != 1 {
            return Err(format!("transfer {t:?} is not between domain neighbors"));
        }
        involved[t.donor] += 1;
        involved[t.receiver] += 1;
    }
    if let Some((rank, _)) = involved.iter().enumerate().find(|(_, &c)| c > 1) {
        return Err(format!("rank {rank} participates in more than one pair"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(count: usize, time: f64) -> LoadInfo {
        LoadInfo { count, time }
    }

    fn cfg() -> BalancerConfig {
        BalancerConfig::fixed(10)
    }

    #[test]
    fn balanced_pair_is_left_alone() {
        let loads = [li(100, 1.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert!(t.is_empty());
    }

    #[test]
    fn imbalanced_pair_transfers_half_the_excess() {
        let loads = [li(200, 2.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 50 }]);
    }

    #[test]
    fn power_weighted_targets() {
        // Equal times are fine; force imbalance by time, then check the
        // target respects a 2:1 power ratio.
        let loads = [li(300, 3.0), li(0, 0.0)];
        let t = evaluate(&loads, &[2.0, 1.0], 0, &cfg());
        // target for rank 0 = 300 × 2/3 = 200 → donate 100 to rank 1.
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 100 }]);
    }

    #[test]
    fn slow_process_donates_to_fast() {
        let loads = [li(100, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[0.5, 2.0], 0, &cfg());
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].donor, 0);
        assert_eq!(t[0].receiver, 1);
        // target_0 = 200 × 0.5/2.5 = 40 → donate 60
        assert_eq!(t[0].amount, 60);
    }

    #[test]
    fn below_threshold_no_action() {
        let loads = [li(105, 1.05), li(100, 1.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn min_transfer_suppresses_tiny_moves() {
        let loads = [li(16, 1.3), li(8, 0.8)];
        let c = BalancerConfig::fixed(10);
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &c).is_empty());
        let c2 = BalancerConfig::fixed(2);
        assert_eq!(evaluate(&loads, &[1.0, 1.0], 0, &c2).len(), 1);
    }

    #[test]
    fn adaptive_min_transfer_scales_with_mean_load() {
        let c = BalancerConfig::default();
        assert_eq!(c.min_transfer, None);
        // Paper-scale slices: 1% of a 5,000-particle mean ≈ the old 32.
        assert_eq!(c.effective_min_transfer(40_000, 8), 50);
        // Thin slices at 1,024 ranks: the floor keeps balancing alive.
        assert_eq!(c.effective_min_transfer(200, 128), 1);
        assert_eq!(c.effective_min_transfer(0, 0), 1);
        // The paper override is scale-blind (the BENCH_5 dead zone).
        assert_eq!(BalancerConfig::paper().effective_min_transfer(200, 128), 32);
    }

    #[test]
    fn adaptive_min_revives_thin_slice_balancing() {
        // The BENCH_5 dead zone in miniature: 128 ranks averaging ~1.3
        // particles each. The spike's pairwise excess (~19) sits under the
        // paper's fixed 32, so it suppresses every order; the adaptive
        // default still drains the spike.
        let n = 128;
        let mut loads = vec![li(1, 1e-6); n];
        loads[40] = li(40, 40e-6);
        let powers = vec![1.0; n];
        assert!(evaluate(&loads, &powers, 0, &BalancerConfig::paper()).is_empty());
        let t = evaluate(&loads, &powers, 0, &BalancerConfig::default());
        assert!(!t.is_empty(), "adaptive minimum must keep thin-slice balancing alive");
        assert!(t.iter().any(|t| t.donor == 40));
    }

    #[test]
    fn rebalanced_pair_consumes_next() {
        // 0-1 imbalanced, 1-2 imbalanced, 2-3 imbalanced. Starting at 0:
        // (0,1) rebalances, (1,2) skipped, (2,3) rebalances.
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0; 4], 0, &cfg());
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].donor, t[0].receiver), (0, 1));
        assert_eq!((t[1].donor, t[1].receiver), (2, 3));
        validate_transfers(&t, 4).unwrap();
    }

    #[test]
    fn alternating_start_shifts_pairs() {
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let t = evaluate(&loads, &[1.0; 4], 1, &cfg());
        // starting at pair (1,2): 1 has 100 (t=1), 2 has 400 (t=4) → 2→1
        assert_eq!((t[0].donor, t[0].receiver), (2, 1));
        validate_transfers(&t, 4).unwrap();
    }

    #[test]
    fn no_process_in_two_pairs() {
        // Adversarial staircase loads.
        let loads = [li(800, 8.0), li(400, 4.0), li(200, 2.0), li(100, 1.0), li(50, 0.5)];
        for start in [0, 1] {
            let t = evaluate(&loads, &[1.0; 5], start, &cfg());
            validate_transfers(&t, 5).unwrap();
        }
    }

    #[test]
    fn single_calculator_never_balances() {
        assert!(evaluate(&[li(100, 1.0)], &[1.0], 0, &cfg()).is_empty());
        assert!(evaluate(&[], &[], 0, &cfg()).is_empty());
    }

    #[test]
    fn zero_time_pair_is_stable() {
        let loads = [li(0, 0.0), li(0, 0.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn zero_time_imbalance_falls_back_to_counts() {
        // Both times zero but the counts are lopsided (first round after a
        // restart): the old scale guard skipped the pair entirely; the count
        // fallback must order the power-proportional move.
        let loads = [li(300, 0.0), li(100, 0.0)];
        let t = evaluate(&loads, &[1.0, 1.0], 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 1, amount: 100 }]);
        // Same signal drives the decentralized variant (half-excess).
        let dec = evaluate_decentralized(&loads, &[1.0, 1.0], &cfg());
        assert_eq!(dec, vec![Transfer { donor: 0, receiver: 1, amount: 50 }]);
        // Equal zero-time counts stay below threshold — no oscillation.
        let even = [li(200, 0.0), li(200, 0.0)];
        assert!(evaluate(&even, &[1.0, 1.0], 0, &cfg()).is_empty());
    }

    #[test]
    fn mismatched_report_lengths_yield_an_empty_round() {
        // A fault-truncated report set must not panic the manager: every
        // entry point returns an empty decision set and waits for the next
        // well-formed round.
        let loads = [li(400, 4.0), li(100, 1.0), li(100, 1.0)];
        assert!(evaluate(&loads, &[1.0, 1.0], 0, &cfg()).is_empty());
        assert!(evaluate_decentralized(&loads, &[1.0], &cfg()).is_empty());
        assert!(evaluate_present(&loads, &[1.0, 1.0], &[0, 2], 0, &cfg()).is_empty());
        assert!(evaluate_present(&loads[..2], &[1.0, 1.0, 1.0], &[0, 1, 2], 0, &cfg()).is_empty());
    }

    #[test]
    fn orders_expand_per_rank() {
        let t = vec![Transfer { donor: 0, receiver: 1, amount: 50 }];
        assert_eq!(orders_for(&t, 0), vec![Order::Send { to: 1, amount: 50 }]);
        assert_eq!(orders_for(&t, 1), vec![Order::Receive { from: 0 }]);
        assert!(orders_for(&t, 2).is_empty());
    }

    #[test]
    fn validate_rejects_non_neighbors() {
        let bad = vec![Transfer { donor: 0, receiver: 2, amount: 5 }];
        assert!(validate_transfers(&bad, 3).is_err());
    }

    #[test]
    fn validate_rejects_double_participation() {
        let bad = vec![
            Transfer { donor: 0, receiver: 1, amount: 5 },
            Transfer { donor: 1, receiver: 2, amount: 5 },
        ];
        assert!(validate_transfers(&bad, 3).is_err());
    }

    #[test]
    fn validate_round_checks_overdraw_and_pairing() {
        let loads = [li(10, 1.0), li(0, 0.0), li(0, 0.0)];
        let present = [0usize, 1, 2];
        // A donor split across both sides is fine for multi-pair
        // strategies as long as the sum stays within its holdings…
        let split = vec![
            Transfer { donor: 1, receiver: 0, amount: 0 },
            Transfer { donor: 1, receiver: 2, amount: 0 },
        ];
        validate_round(&split, &loads, &present, true).unwrap();
        assert!(validate_round(&split, &loads, &present, false).is_err());
        // …but overdrawing is never fine.
        let over = vec![Transfer { donor: 0, receiver: 1, amount: 11 }];
        assert!(validate_round(&over, &loads, &present, true).is_err());
        let absent = vec![Transfer { donor: 3, receiver: 1, amount: 1 }];
        assert!(validate_round(&absent, &loads, &present, true).is_err());
    }

    #[test]
    fn decentralized_all_pairs_may_act() {
        // Staircase loads: centralized consumes neighbors, decentralized
        // lets every pair act — including a rank sending and receiving.
        let loads = [li(800, 8.0), li(400, 4.0), li(200, 2.0), li(100, 1.0)];
        let cfg = BalancerConfig { rel_threshold: 0.1, ..BalancerConfig::fixed(10) };
        let dec = evaluate_decentralized(&loads, &[1.0; 4], &cfg);
        assert_eq!(dec.len(), 3, "all three pairs act: {dec:?}");
        // rank 1 both receives (from 0) and sends (to 2)
        assert!(dec.iter().any(|t| t.receiver == 1));
        assert!(dec.iter().any(|t| t.donor == 1));
        // half-excess damping: pair (0,1) target 600 → excess 200 → move 100
        assert_eq!(dec[0], Transfer { donor: 0, receiver: 1, amount: 100 });
    }

    #[test]
    fn decentralized_donor_never_overdraws() {
        // Even when a rank donates on both sides, half-excess per pair can
        // never exceed its holdings: each amount ≤ count/2.
        let loads = [li(0, 0.0), li(100, 1.0), li(0, 0.0)];
        let cfg = BalancerConfig { rel_threshold: 0.1, ..BalancerConfig::fixed(1) };
        let dec = evaluate_decentralized(&loads, &[1.0; 3], &cfg);
        let total_from_1: usize = dec.iter().filter(|t| t.donor == 1).map(|t| t.amount).sum();
        assert!(total_from_1 <= 100, "overdraw: {dec:?}");
        assert_eq!(dec.len(), 2);
        validate_round(&dec, &loads, &[0, 1, 2], true).unwrap();
    }

    #[test]
    fn decentralized_converges_but_damping_costs_rounds() {
        // Point spike: decentralized diffusion converges without any
        // manager, but its half-excess damping costs rounds relative to
        // the centralized full-excess walk — the trade-off the ablation
        // bench quantifies. (Empirically ~2x on this spike.)
        let drain = |decentralized: bool| {
            let n = 12;
            let mut counts = vec![1_000usize; n];
            counts[0] = 200_000;
            let powers = vec![1.0; n];
            let cfg = BalancerConfig { rel_threshold: 0.1, ..BalancerConfig::fixed(32) };
            for round in 0..2_000usize {
                let l: Vec<LoadInfo> = counts.iter().map(|&c| li(c, c as f64 * 1e-6)).collect();
                let ts = if decentralized {
                    evaluate_decentralized(&l, &powers, &cfg)
                } else {
                    evaluate(&l, &powers, round % 2, &cfg)
                };
                if ts.is_empty() {
                    return round;
                }
                for t in ts {
                    counts[t.donor] -= t.amount.min(counts[t.donor]);
                    counts[t.receiver] += t.amount;
                }
            }
            2_000
        };
        let dec = drain(true);
        let cen = drain(false);
        assert!(dec < 2_000, "decentralized must converge, took {dec}");
        assert!(cen < 2_000, "centralized must converge, took {cen}");
        assert!(
            dec > cen && dec < 4 * cen,
            "damping costs rounds but stays bounded: dec {dec} vs cen {cen}"
        );
    }

    #[test]
    fn present_subset_maps_back_to_real_ranks() {
        // Rank 1 is dead: present = [0, 2, 3]. An imbalance between 0 and 2
        // must produce a transfer between the *real* ranks 0 and 2, which
        // plain validate_transfers would reject as non-neighbors.
        let loads = [li(400, 4.0), li(100, 1.0), li(100, 1.0)];
        let present = [0usize, 2, 3];
        let t = evaluate_present(&loads, &[1.0; 3], &present, 0, &cfg());
        assert_eq!(t, vec![Transfer { donor: 0, receiver: 2, amount: 150 }]);
        assert!(validate_transfers(&t, 4).is_err());
        validate_transfers_mapped(&t, &present).unwrap();
    }

    #[test]
    fn mapped_validation_rejects_absent_and_nonadjacent() {
        let present = [0usize, 2, 3];
        let absent = vec![Transfer { donor: 1, receiver: 2, amount: 5 }];
        assert!(validate_transfers_mapped(&absent, &present).is_err());
        let skip = vec![Transfer { donor: 0, receiver: 3, amount: 5 }];
        assert!(validate_transfers_mapped(&skip, &present).is_err());
        let double = vec![
            Transfer { donor: 0, receiver: 2, amount: 5 },
            Transfer { donor: 2, receiver: 3, amount: 5 },
        ];
        assert!(validate_transfers_mapped(&double, &present).is_err());
        let unsorted = [2usize, 0, 3];
        assert!(validate_transfers_mapped(&[], &unsorted).is_err());
    }

    #[test]
    fn present_subset_with_all_ranks_matches_plain_evaluate() {
        let loads = [li(400, 4.0), li(100, 1.0), li(400, 4.0), li(100, 1.0)];
        let present = [0usize, 1, 2, 3];
        for start in [0, 1] {
            assert_eq!(
                evaluate_present(&loads, &[1.0; 4], &present, start, &cfg()),
                evaluate(&loads, &[1.0; 4], start, &cfg())
            );
        }
    }

    #[test]
    fn convergence_under_repeated_rounds() {
        // Simulate rounds: time proportional to count; all powers equal.
        // The balancer must monotonically reduce imbalance to threshold.
        let mut counts = vec![1000usize, 10, 10, 10, 10, 10, 10, 10];
        let powers = vec![1.0; 8];
        let c = BalancerConfig { rel_threshold: 0.1, ..BalancerConfig::fixed(5) };
        for round in 0..64 {
            let loads: Vec<LoadInfo> = counts.iter().map(|&n| li(n, n as f64 * 1e-3)).collect();
            let ts = evaluate(&loads, &powers, round % 2, &c);
            validate_transfers(&ts, 8).unwrap();
            for t in ts {
                counts[t.donor] -= t.amount;
                counts[t.receiver] += t.amount;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / 8.0;
        assert!(max / mean < 1.35, "neighbor balancing should flatten the spike: {counts:?}");
    }
}
