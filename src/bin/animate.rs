//! `animate` — run a workload on any executor from the command line.
//!
//! ```text
//! animate <workload> [options]
//!
//! workloads: snow | fountain | fireworks | smoke
//! options:
//!   --executor  virtual|threaded|sequential   (default: threaded)
//!   --procs N        calculators              (default: 4)
//!   --frames N                                (default: 30)
//!   --particles N    per system               (default: 10000)
//!   --systems N                               (default: 4)
//!   --balance  slb|dlb|dec                    (default: dlb)
//!   --space    fs|is                          (default: fs)
//!   --render DIR     write PPM frames (threaded executor only)
//!   --streaks        render orientation streaks instead of dots
//! ```

use std::path::PathBuf;

use particle_cluster_anim::math::Histogram;
use particle_cluster_anim::prelude::*;
use particle_cluster_anim::workloads::{fountain, snow};

struct Args {
    workload: String,
    executor: String,
    procs: usize,
    frames: u64,
    particles: usize,
    systems: usize,
    balance: BalanceMode,
    space: SpaceMode,
    render: Option<PathBuf>,
    streaks: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: animate <snow|fountain|fireworks|smoke> [--executor virtual|threaded|sequential] \
         [--procs N] [--frames N] [--particles N] [--systems N] [--balance slb|dlb|dec] \
         [--space fs|is] [--render DIR] [--streaks]"
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut a = Args {
        workload: String::new(),
        executor: "threaded".into(),
        procs: 4,
        frames: 30,
        particles: 10_000,
        systems: 4,
        balance: BalanceMode::dynamic(),
        space: SpaceMode::Finite,
        render: None,
        streaks: false,
    };
    let mut it = std::env::args().skip(1);
    a.workload = it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--executor" => a.executor = val(),
            "--procs" => a.procs = val().parse().unwrap_or_else(|_| usage()),
            "--frames" => a.frames = val().parse().unwrap_or_else(|_| usage()),
            "--particles" => a.particles = val().parse().unwrap_or_else(|_| usage()),
            "--systems" => a.systems = val().parse().unwrap_or_else(|_| usage()),
            "--balance" => {
                a.balance = match val().as_str() {
                    "slb" => BalanceMode::Static,
                    "dlb" => BalanceMode::dynamic(),
                    "dec" => BalanceMode::decentralized(),
                    _ => usage(),
                }
            }
            "--space" => {
                a.space = match val().as_str() {
                    "fs" => SpaceMode::Finite,
                    "is" => SpaceMode::Infinite,
                    _ => usage(),
                }
            }
            "--render" => a.render = Some(PathBuf::from(val())),
            "--streaks" => a.streaks = true,
            _ => usage(),
        }
    }
    a
}

fn main() {
    let args = parse();
    let size =
        WorkloadSize { systems: args.systems, particles_per_system: args.particles, scale: 1.0 };
    let (scene, dt, view_top) = match args.workload.as_str() {
        "snow" => (snow_scene(size), snow::SNOW_DT, 36.0),
        "fountain" => (fountain_scene(size), fountain::FOUNTAIN_DT, 14.0),
        "fireworks" => (fireworks_scene(args.systems.max(1), args.particles), 0.05, 30.0),
        "smoke" => (smoke_scene(args.systems.max(1), args.particles), 0.1, 20.0),
        _ => usage(),
    };
    let cfg = RunConfig {
        frames: args.frames,
        dt,
        balance: args.balance,
        space: args.space,
        ..Default::default()
    };

    let report = match args.executor.as_str() {
        "sequential" => run_sequential(&scene, &cfg, &CostModel::default(), 1.0),
        "virtual" => {
            let cluster = myrinet_gcc(args.procs.max(1), 1);
            let mut sim =
                VirtualSim::new(scene.clone(), cfg.clone(), cluster, CostModel::default());
            sim.run()
        }
        "threaded" => {
            let sink = args.render.as_ref().map(|dir| {
                let camera = Camera::ortho(
                    Aabb::new(Vec3::new(-42.0, -1.0, -42.0), Vec3::new(42.0, view_top, 42.0)),
                    640,
                    480,
                );
                let mut s = RenderSink::headless(camera);
                s.out_dir = Some(dir.clone());
                s.prefix = args.workload.clone();
                if args.streaks {
                    s.streaks = Some((1.2, 4));
                }
                s
            });
            run_threaded(&scene, &cfg, args.procs.max(1), sink).expect("threaded run failed")
        }
        _ => usage(),
    };

    // Summary.
    println!(
        "{} on {} ({}): {:.3}s total, {} frames",
        args.workload,
        args.executor,
        report.cluster,
        report.total_time,
        report.frames.len()
    );
    println!(
        "alive (last frame): {}   migrated/frame: {:.0}   migration KB/frame: {:.1}",
        report.frames.last().map(|f| f.alive).unwrap_or(0),
        report.mean_migrated(),
        report.mean_migration_kb()
    );
    let mut times = Histogram::new(
        0.0,
        report.frames.iter().map(|f| f.frame_time).fold(0.0, f64::max).max(1e-9) * 1.01,
        24,
    );
    for f in &report.frames {
        times.push(f.frame_time);
    }
    println!(
        "frame times: p50 {:.4}s p95 {:.4}s  {}",
        times.quantile(0.5),
        times.quantile(0.95),
        times.sparkline()
    );
    let mut imb = Histogram::new(0.0, 2.0, 20);
    for f in &report.frames {
        imb.push(f.imbalance);
    }
    println!("imbalance (max/mean-1): mean {:.3}  {}", report.mean_imbalance(), imb.sparkline());
    if let Some(dir) = args.render {
        println!("frames written to {}", dir.display());
    }
}
