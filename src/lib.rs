//! particle-cluster-anim — parallel stochastic particle-system animation
//! for heterogeneous clusters.
//!
//! A full reproduction of *Oliva & De Rose, "Modeling Particle Systems
//! Animations for Heterogeneous Clusters", IPDPS 2005*: the
//! manager/calculator/image-generator process model, per-system spatial
//! domain decomposition, the centralized neighbor-pair dynamic load
//! balancer, a McAllister-style particle API on top, and the virtual
//! heterogeneous-cluster substrate that regenerates every table of the
//! paper's evaluation.
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users need a single dependency:
//!
//! * [`math`] — vectors, intervals, deterministic RNG streams;
//! * [`core`] — particles, systems, domains, actions, collision;
//! * [`cluster`] — node catalog, network models, the cost model;
//! * [`net`] — virtual and threaded message fabrics;
//! * [`runtime`] — the paper's model: roles, frame protocol, SLB/DLB,
//!   executors;
//! * [`render`] — the image generator's software rasterizer;
//! * [`api`] — the immediate-mode McAllister-style API;
//! * [`workloads`] — the paper's snow/fountain experiments and extras;
//! * [`chaos`] — seeded fault plans and the chaos scenario matrix;
//! * [`trace`] — the per-phase observability layer (quiet recorders,
//!   frame/phase timings, counters, JSON export).
//!
//! ## Quickstart
//!
//! ```
//! use particle_cluster_anim::prelude::*;
//!
//! // The paper's snow experiment, scaled down, on four host threads.
//! let size = WorkloadSize { systems: 2, particles_per_system: 2_000, scale: 1.0 };
//! let scene = snow_scene(size);
//! let cfg = RunConfig { frames: 10, dt: 0.15, ..Default::default() };
//! let report = run_threaded(&scene, &cfg, 4, None).expect("threaded run failed");
//! assert_eq!(report.frames.len(), 10);
//! ```

pub use cluster_sim as cluster;
pub use netsim as net;
pub use psa_api as api;
pub use psa_chaos as chaos;
pub use psa_core as core;
pub use psa_math as math;
pub use psa_render as render;
pub use psa_runtime as runtime;
pub use psa_trace as trace;
pub use psa_workloads as workloads;

/// The items most programs need.
pub mod prelude {
    pub use cluster_sim::{e60, e800, zx2000, ClusterSpec, Compiler, CostModel, NetworkModel};
    pub use psa_api::{Context, PDomain};
    pub use psa_core::actions::*;
    pub use psa_core::objects::ExternalObject;
    pub use psa_core::{DomainMap, Particle, ParticleStore, SubDomainStore, SystemId, SystemSpec};
    pub use psa_math::{Aabb, Axis, Interval, Rng64, Vec3};
    pub use psa_render::{
        render_objects, render_particles, render_streaks, Camera, ColorMap, Framebuffer,
        SplatConfig,
    };
    pub use psa_runtime::threaded::RenderSink;
    pub use psa_runtime::{
        run_sequential, run_threaded, run_threaded_traced, BalanceMode, BalancerConfig,
        ParallelConfig, RunConfig, RunReport, Scene, SpaceMode, SystemSetup, VirtualSim,
    };
    pub use psa_trace::{Phase, TraceReport, PHASES};
    pub use psa_workloads::{
        fireworks_scene, fountain_scene, myrinet_gcc, smoke_scene, snow_scene, WorkloadSize,
    };
}
