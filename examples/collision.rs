//! Inter-particle collision detection — the hook the model's data
//! locality exists for (paper §3.1.4).
//!
//! Drops a cloud of elastic balls onto the ground and resolves
//! ball–ball contacts with the uniform-grid broadphase, printing energy
//! accounting. A second part shows the domain-decomposition benefit: the
//! grid only needs the local slice plus a ghost slab from the neighbors,
//! not the whole space.
//!
//! Run with: `cargo run --release --example collision`

use particle_cluster_anim::core::collide::{colliding_pairs, resolve_elastic};
use particle_cluster_anim::prelude::*;

fn main() {
    let mut rng = Rng64::new(2026);
    let radius = 0.12;
    let mut balls: Vec<Particle> = (0..4_000)
        .map(|_| {
            Particle::at(rng.in_box(Vec3::new(-6.0, 2.0, -6.0), Vec3::new(6.0, 10.0, 6.0)))
                .with_velocity(rng.in_unit_sphere() * 1.0)
                .with_size(radius)
        })
        .collect();
    let ground = ExternalObject::ground(0.0);
    let dt = 1.0 / 60.0;

    println!("4000 elastic balls, uniform-grid broadphase, 120 steps\n");
    for step in 0..120 {
        // gravity + ground bounce
        for p in balls.iter_mut() {
            p.velocity.y -= 9.81 * dt;
            ground.bounce(&mut p.position, &mut p.velocity, 0.35, 0.08);
        }
        // ball-ball collisions
        let pairs = colliding_pairs(&balls, &[], 2.0 * radius);
        resolve_elastic(&mut balls, &pairs, 0.25);
        // integrate
        for p in balls.iter_mut() {
            p.position += p.velocity * dt;
        }
        if step % 30 == 0 {
            let ke: f64 = balls.iter().map(|p| p.kinetic_energy() as f64).sum();
            let mean_h: f32 = balls.iter().map(|p| p.position.y).sum::<f32>() / balls.len() as f32;
            println!(
                "step {step:>3}: {:>5} contacts, kinetic energy {ke:>9.1}, mean height {mean_h:.2}",
                pairs.len()
            );
        }
    }

    // Domain-decomposition view: with the space sliced 8 ways, a
    // calculator only tests its slice plus ghosts within one diameter of
    // its boundaries — count how much smaller that is.
    let dm = DomainMap::split_even(Interval::new(-8.0, 8.0), Axis::X, 8);
    let slice = dm.slice(3);
    let local: Vec<Particle> =
        balls.iter().filter(|p| slice.contains(p.position.x)).copied().collect();
    let ghosts: Vec<Particle> = balls
        .iter()
        .filter(|p| {
            let x = p.position.x;
            !slice.contains(x) && (x >= slice.lo - 4.0 * radius) && (x < slice.hi + 4.0 * radius)
        })
        .copied()
        .collect();
    let local_pairs = colliding_pairs(&local, &ghosts, 2.0 * radius);
    println!(
        "\ndomain view: calculator 3 tests {} local + {} ghost particles instead of {} — {}x less",
        local.len(),
        ghosts.len(),
        balls.len(),
        balls.len() / (local.len() + ghosts.len()).max(1),
    );
    println!(
        "  ({} of its contacts involve a ghost from a neighbor domain)",
        local_pairs.iter().filter(|(_, j)| *j as usize >= local.len()).count()
    );
}
