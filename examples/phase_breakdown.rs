//! Where does a frame's time go? Run the snow and fountain workloads on
//! the same simulated cluster with per-phase instrumentation and print
//! each run's breakdown: the snow experiment is compute-bound, while the
//! fountain's concentrated emitter makes exchange + ship dominate — the
//! communication profile behind its lower Table-3 speed-ups.
//!
//! Instrumentation is quiet: the recorder only reads the virtual clocks,
//! so these runs are byte-identical to untraced ones.
//!
//! Run with: `cargo run --release --example phase_breakdown`

use particle_cluster_anim::prelude::*;

fn main() {
    let size = WorkloadSize { systems: 4, particles_per_system: 4_000, scale: 1.0 };
    for (name, scene, dt) in
        [("snow", snow_scene(size), 0.15f32), ("fountain", fountain_scene(size), 0.04)]
    {
        let cfg = RunConfig {
            frames: 20,
            dt,
            seed: 7,
            balance: BalanceMode::dynamic(),
            ..Default::default()
        };
        let mut sim =
            VirtualSim::new(scene, cfg, myrinet_gcc(8, 2), CostModel::default()).with_phases();
        let report = sim.run();
        println!("== {name}: {:.2} virtual s total ==", report.total_time);
        println!("{}", report.phase_table().expect("traced run has a phase table"));
        let trace = report.phases.as_ref().unwrap();
        let totals = trace.phase_totals();
        let grand: f64 = totals.iter().sum();
        let comm = totals[Phase::Exchange.index()] + totals[Phase::Ship.index()];
        println!("communication share: {:.1}%\n", comm / grand * 100.0);
    }
}
