//! The paper's snow experiment (§5.1), reproduced end to end.
//!
//! Runs the four configurations of Table 1 (IS/FS × SLB/DLB) on a
//! simulated 8×E800 Myrinet cluster at reduced scale and prints the
//! speed-up matrix, demonstrating the central claims: infinite space
//! starves static balancing, dynamic balancing recovers it, and with a
//! restrictable space static balancing is slightly cheaper.
//!
//! Run with: `cargo run --release --example snow`

use particle_cluster_anim::prelude::*;

fn main() {
    let size = WorkloadSize { systems: 8, particles_per_system: 5_000, scale: 80.0 };
    let cost = size.cost_model();
    let scene = snow_scene(size);
    let base_cfg = RunConfig { frames: 25, dt: 0.15, warmup: 5, ..Default::default() };

    let seq = run_sequential(&scene, &base_cfg, &cost, 1.0);
    let baseline = seq.steady_time();
    println!(
        "sequential on E800+GCC: {:.1} virtual s steady state ({} alive)",
        baseline,
        seq.frames.last().unwrap().alive
    );
    println!("\n{:<10}{:>10}{:>14}{:>14}", "config", "speed-up", "imbalance", "migr KB/frame");

    for (label, space, balance) in [
        ("IS-SLB", SpaceMode::Infinite, BalanceMode::Static),
        ("FS-SLB", SpaceMode::Finite, BalanceMode::Static),
        ("IS-DLB", SpaceMode::Infinite, BalanceMode::dynamic()),
        ("FS-DLB", SpaceMode::Finite, BalanceMode::dynamic()),
    ] {
        let cfg = RunConfig { space, balance, ..base_cfg.clone() };
        let mut sim = VirtualSim::new(scene.clone(), cfg, myrinet_gcc(8, 1), cost.clone());
        let rep = sim.run();
        println!(
            "{label:<10}{:>10.2}{:>14.3}{:>14.0}",
            baseline / rep.steady_time(),
            rep.mean_imbalance(),
            rep.mean_migration_kb()
        );
    }
    println!("\n(paper Table 1, 8*B/8P row: IS-SLB 1.74, FS-SLB 4.14, IS-DLB 3.37, FS-DLB 4.14)");
}
