//! The paper's fountain experiment (§5.2): irregular load.
//!
//! Eight fountains at irregular positions make a static domain split
//! useless — the calculators owning nozzle slices drown while the rest
//! idle. This example runs SLB and DLB side by side and prints how the
//! balancer moves the domain cuts frame by frame.
//!
//! Run with: `cargo run --release --example fountain`

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::workloads::fountain::FOUNTAIN_DT;

fn main() {
    let size = WorkloadSize { systems: 8, particles_per_system: 5_000, scale: 80.0 };
    let cost = size.cost_model();
    let scene = fountain_scene(size);
    let base_cfg = RunConfig { frames: 30, dt: FOUNTAIN_DT, warmup: 5, ..Default::default() };

    let seq = run_sequential(&scene, &base_cfg, &cost, 1.0);
    let baseline = seq.steady_time();

    let mut results = Vec::new();
    for balance in [BalanceMode::Static, BalanceMode::dynamic()] {
        let cfg = RunConfig { balance, ..base_cfg.clone() };
        let mut sim = VirtualSim::new(scene.clone(), cfg, myrinet_gcc(8, 1), cost.clone());
        let rep = sim.run();
        results.push((balance.label(), rep));
    }

    println!("fountain, 8 calculators on a simulated Myrinet E800 cluster\n");
    println!("{:<8}{:>10}{:>12}{:>16}", "mode", "speed-up", "imbalance", "balanced/frame");
    for (label, rep) in &results {
        let balanced: f64 =
            rep.frames.iter().map(|f| f.balanced as f64).sum::<f64>() / rep.frames.len() as f64;
        println!(
            "{label:<8}{:>10.2}{:>12.3}{:>16.0}",
            baseline / rep.steady_time(),
            rep.mean_imbalance(),
            balanced
        );
    }

    // Show the imbalance trajectory under DLB: the neighbor-pair balancer
    // flattening the nozzle hot spots over the first frames.
    let dlb = &results[1].1;
    println!("\nimbalance (max/mean - 1) per frame under DLB:");
    for f in dlb.frames.iter().take(20) {
        let bars = "#".repeat((f.imbalance * 20.0).round() as usize);
        println!("  frame {:>3}: {:>6.3} {bars}", f.frame, f.imbalance);
    }
    println!("\n(paper Table 3, 8*B/8P row: FS-SLB 1.86 vs FS-DLB 2.67 — DLB must win)");
}
