//! Fireworks through the McAllister-style immediate-mode API, rendered to
//! PPM frames with the software rasterizer.
//!
//! Writes `fireworks_00NN.ppm` files under `target/frames/` — turn them
//! into a video with e.g.
//! `ffmpeg -i target/frames/fireworks_%04d.ppm fireworks.mp4`.
//!
//! Run with: `cargo run --release --example fireworks`

use particle_cluster_anim::prelude::*;
use particle_cluster_anim::render::image::{frame_filename, write_ppm};
use particle_cluster_anim::render::render_particles;

fn main() {
    let mut ctx = Context::new(0xF14E);
    let shells = [
        (Vec3::new(-12.0, 16.0, 0.0), Vec3::new(1.0, 0.4, 0.2)),
        (Vec3::new(0.0, 20.0, 0.0), Vec3::new(0.3, 0.7, 1.0)),
        (Vec3::new(12.0, 17.0, 0.0), Vec3::new(1.0, 0.9, 0.4)),
    ];
    let groups: Vec<usize> = shells
        .iter()
        .enumerate()
        .map(|(i, _)| ctx.p_gen_particle_group(&format!("shell-{i}"), 20_000))
        .collect();
    ctx.p_time_step(0.05);
    ctx.p_size(0.15);

    let camera = Camera::ortho(
        Aabb::new(Vec3::new(-25.0, 0.0, -25.0), Vec3::new(25.0, 30.0, 25.0)),
        480,
        360,
    );
    let splat = SplatConfig { additive: true, ..Default::default() };
    let out_dir = std::path::Path::new("target/frames");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let mut fb = Framebuffer::new(480, 360);
    for frame in 0..48u64 {
        for (g, (center, color)) in groups.iter().zip(shells.iter()) {
            ctx.p_current_group(*g);
            ctx.p_new_frame();
            // Each shell bursts on its own schedule.
            let burst_frame = 2 + 6 * *g as u64;
            if frame == burst_frame {
                ctx.p_color(color.x, color.y, color.z, 1.0);
                ctx.p_position_domain(PDomain::Sphere {
                    center: *center,
                    r_outer: 0.5,
                    r_inner: 0.0,
                });
                ctx.p_velocity_domain(PDomain::Sphere {
                    center: Vec3::ZERO,
                    r_outer: 10.0,
                    r_inner: 6.0,
                });
                ctx.p_source(4000);
            }
            ctx.p_gravity(Vec3::new(0.0, -5.0, 0.0));
            ctx.p_damping(0.25);
            ctx.p_fade(0.45, true);
            ctx.p_kill_old(3.0);
            ctx.p_move();
        }

        fb.clear(Vec3::new(0.01, 0.01, 0.03));
        let mut drawn = 0;
        for g in &groups {
            drawn += render_particles(&mut fb, &camera, ctx.group(*g).particles(), &splat);
        }
        let path = out_dir.join(frame_filename("fireworks", frame));
        write_ppm(&fb, &path).expect("write frame");
        if frame % 8 == 0 {
            println!(
                "frame {frame:>2}: {drawn:>6} sparks drawn, mean luminance {:.4}",
                fb.mean_luminance()
            );
        }
    }
    println!("wrote 48 frames to {}", out_dir.display());
}
