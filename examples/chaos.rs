//! Degraded-mode demonstration: snow survives a calculator crash.
//!
//! Runs the paper's snow workload on a 6-calculator Myrinet cluster,
//! injects a crash of calculator 2 at frame 20, and shows the hardened
//! protocol absorbing it: peers time out instead of hanging, the manager
//! declares the rank dead after three silent rounds, its domain slice is
//! reassigned through the §3.2.5 balancer machinery, and every remaining
//! frame still renders. The run is then replayed with the same seed and
//! plan to show the failure itself is deterministic.
//!
//! Run with: `cargo run --release --example chaos`

use particle_cluster_anim::chaos::Scenario;
use particle_cluster_anim::prelude::*;

fn main() {
    let size = WorkloadSize { systems: 4, particles_per_system: 2_000, scale: 40.0 };
    let cost = size.cost_model();
    let cluster = myrinet_gcc(6, 1);
    let cfg = RunConfig { frames: 40, dt: 0.15, ..Default::default() };
    let scenario = Scenario::CrashCalculator { rank: 2, frame: 20 };
    let plan = scenario.plan(cfg.seed, 6, &cluster.net);

    let run = || {
        let mut sim = VirtualSim::new(snow_scene(size), cfg.clone(), cluster.clone(), cost.clone())
            .with_faults(plan.clone());
        sim.try_run().expect("degraded run must still complete")
    };

    let report = run();
    println!("snow on 6 calculators, calculator 2 crashes at frame 20\n");
    println!("{:>6} {:>10} {:>9} {:>10}  note", "frame", "alive", "timeouts", "imbalance");
    for f in &report.frames {
        let note = match report.dead_ranks.iter().find(|&&(_, df)| df == f.frame) {
            Some(&(rank, _)) => format!("rank {rank} declared dead, domain reassigned"),
            None if f.timeouts > 0 => "peers waiting on the silent rank".into(),
            None => String::new(),
        };
        println!("{:>6} {:>10} {:>9} {:>10.3}  {note}", f.frame, f.alive, f.timeouts, f.imbalance);
    }

    let (rank, frame) = report.dead_ranks[0];
    println!(
        "\ncalculator {rank} declared dead at frame {frame}; {} virtual particles lost; \
         {}/{} frames rendered",
        report.lost_particles,
        report.frames.len(),
        cfg.frames
    );

    let replay = run();
    assert_eq!(report.fingerprint(), replay.fingerprint());
    println!(
        "replay with same seed + plan: fingerprint {:016x} — byte-identical",
        replay.fingerprint()
    );
}
