//! Quickstart: simulate a small snow scene three ways.
//!
//! 1. sequentially (the baseline the paper compares against),
//! 2. on real host threads (the SPMD executor),
//! 3. on a simulated 8-node Myrinet cluster (the virtual-time executor
//!    that reproduces the paper's numbers),
//!
//! and print what each one measured.
//!
//! Run with: `cargo run --release --example quickstart`

use particle_cluster_anim::prelude::*;

fn main() {
    // A paper-shaped workload at 1/200 scale so this runs in a second.
    let size = WorkloadSize { systems: 4, particles_per_system: 4_000, scale: 1.0 };
    let scene = snow_scene(size);
    let cfg = RunConfig {
        frames: 20,
        dt: 0.15,
        seed: 7,
        balance: BalanceMode::dynamic(),
        ..Default::default()
    };

    // 1. Sequential baseline on an E800 under GCC (relative speed 1.0).
    let cost = CostModel::default();
    let seq = run_sequential(&scene, &cfg, &cost, 1.0);
    println!(
        "sequential: {:.2} virtual s, {} particles alive at the end",
        seq.total_time,
        seq.frames.last().unwrap().alive
    );

    // 2. Real host threads: same protocol, wall-clock timing.
    let thr = run_threaded(&scene, &cfg, 4, None).expect("threaded run failed");
    println!(
        "threaded ({} calculators): {:.0} ms wall, {} alive, {} particles migrated/frame",
        thr.calculators,
        thr.total_time * 1e3,
        thr.frames.last().unwrap().alive,
        thr.mean_migrated().round()
    );

    // 3. The virtual cluster: 8 E800 nodes on Myrinet, as in Table 1.
    let cluster = myrinet_gcc(8, 1);
    let mut sim = VirtualSim::new(scene, cfg, cluster, cost);
    let par = sim.run();
    println!(
        "virtual 8-node cluster: {:.2} virtual s -> speed-up {:.2} vs sequential",
        par.total_time,
        par.speedup_vs(seq.total_time)
    );
    println!(
        "  mean imbalance {:.3}, {:.0} KB migrated/frame, {} messages total",
        par.mean_imbalance(),
        par.mean_migration_kb(),
        par.traffic.messages
    );
}
