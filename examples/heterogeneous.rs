//! Heterogeneous cluster balancing: watching particles flow toward the
//! fast machines.
//!
//! Builds the paper's best Table-2 mix — two E800s (four calculators) plus
//! two Itanium zx2000s — and shows the per-calculator particle counts the
//! dynamic balancer converges to, which should be proportional to each
//! machine's processing power exactly as §3.2.5 prescribes.
//!
//! Run with: `cargo run --release --example heterogeneous`

use particle_cluster_anim::prelude::*;

fn main() {
    let size = WorkloadSize { systems: 4, particles_per_system: 6_000, scale: 50.0 };
    let cost = size.cost_model();
    let scene = snow_scene(size);
    let cfg = RunConfig { frames: 40, dt: 0.15, warmup: 10, ..Default::default() };

    // 2*B (4 P.) + 2*C (2 P.) on Fast-Ethernet with ICC: the paper's best
    // heterogeneous result (speed-up 3.15).
    let cluster = ClusterSpec::new(NetworkModel::fast_ethernet(), Compiler::Icc)
        .add_nodes(e800(), 2, 2)
        .add_nodes(zx2000(), 2, 1);
    let placement = cluster.placement();
    println!("cluster: {}", cluster.describe());
    for (i, r) in placement.ranks.iter().enumerate() {
        println!("  calculator {i}: node {} at relative speed {:.2}", r.node, r.speed);
    }

    let seq = run_sequential(&scene, &cfg, &cost, zx2000().speed(Compiler::Icc));
    let baseline = seq.steady_time();

    for (label, balance) in [("SLB", BalanceMode::Static), ("DLB", BalanceMode::dynamic())] {
        let run_cfg = RunConfig { balance, ..cfg.clone() };
        let mut sim = VirtualSim::new(scene.clone(), run_cfg, cluster.clone(), cost.clone());
        let rep = sim.run();
        println!(
            "\n{label}: speed-up {:.2} vs sequential Itanium+ICC, mean imbalance {:.3}",
            baseline / rep.steady_time(),
            rep.mean_imbalance()
        );
    }

    // The power-proportional targets §3.2.5 implies for one system:
    let total: f64 = placement.ranks.iter().map(|r| r.speed).sum();
    println!("\npower-proportional share the balancer steers toward:");
    for (i, r) in placement.ranks.iter().enumerate() {
        println!("  calculator {i}: {:.1}% of each system", 100.0 * r.speed / total);
    }
    println!("\n(paper: this mix reached speed-up 3.15, the best of Table 2)");
}
